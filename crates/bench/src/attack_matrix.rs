//! Attack-matrix sweep: strategy x schedule x mitigator, Monte-Carlo over
//! seeds (`repro attack-matrix`).
//!
//! Each cell of the matrix composes one [`AddressStrategy`], one
//! [`Schedule`] and one mitigator, runs `trials` seeded trials of the
//! [`mirza_attacks::rig`], and reports the success probability — the
//! fraction of trials in which the victim model's worst row met the
//! mitigation's NBO bound — plus the worst per-row ACT burden observed.
//! The swept schedule axis includes two pacings of the inter-ACT gap, so
//! the matrix doubles as a one-parameter sweep (burst, paced-1, paced-4
//! are gap = 0, 1, 4).
//!
//! Determinism: a cell's trials derive their seeds from the cell seed
//! alone, every strategy draws randomness only from those seeds, and the
//! rig is RNG-free — so a re-run with the same master seed produces a
//! bit-identical CSV (there is an integration test pinning this).

use std::fmt::Write as _;

use mirza_attacks::rig::run_attack;
use mirza_attacks::schedule::{AlertAdaptive, Burst, Paced, Schedule};
use mirza_attacks::strategy::{
    AddressStrategy, DecoyFlood, Feinting, PatternStrategy, RefreshSyncStrategy,
};
use mirza_attacks::victim::{AnyRow, TargetRows};
use mirza_core::config::MirzaConfig;
use mirza_core::mirza::Mirza;
use mirza_dram::address::{RegionMap, RowMapping};
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::Mitigator;
use mirza_dram::timing::TimingParams;
use mirza_telemetry::{names, Json, Telemetry};
use mirza_trackers::mithril::Mithril;
use mirza_trackers::prac::PracMoat;
use mirza_trackers::trr::Trr;

use crate::scale::Scale;

/// Fixed CSV header; `scripts/attack_gate.py` fails CI on any drift.
pub const CSV_HEADER: &str =
    "strategy,schedule,mitigator,seed,trials,successes,success_prob,max_row_acts,bound,total_acts,alerts";

/// Strategy roster entries: constructors deferred so each trial gets a
/// fresh instance built from its own derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Classic double-sided pair around a mid-bank victim.
    DoubleSided,
    /// TRRespass-style many-sided pattern.
    ManySided,
    /// Blacksmith-style non-uniform pattern (uses the trial seed).
    Blacksmith,
    /// CGF-evading same-region kernel.
    SameRegion,
    /// Feinting attack on the mitigation queue.
    Feint,
    /// Decoy flood that breaks sampling trackers.
    DecoyFlood,
    /// Refresh-pointer chasing attack.
    RefreshSync,
}

impl StrategyKind {
    /// Every implemented strategy.
    pub fn all() -> Vec<StrategyKind> {
        vec![
            StrategyKind::DoubleSided,
            StrategyKind::ManySided,
            StrategyKind::Blacksmith,
            StrategyKind::SameRegion,
            StrategyKind::Feint,
            StrategyKind::DecoyFlood,
            StrategyKind::RefreshSync,
        ]
    }

    /// Builds the strategy for one trial. Parameters derive from the
    /// geometry so every scale hosts the pattern.
    pub fn build(
        &self,
        mapping: &RowMapping,
        regions: &RegionMap,
        trial_seed: u64,
    ) -> Box<dyn AddressStrategy> {
        let rps = mapping.rows_per_subarray();
        // A mid-bank, mid-subarray victim: away from subarray edges at
        // every supported shrink.
        let victim = mapping.rows_per_bank() / 2 + rps / 2;
        match self {
            StrategyKind::DoubleSided => Box::new(PatternStrategy::double_sided(mapping, victim)),
            StrategyKind::ManySided => {
                let pairs = (rps / 8).max(1);
                Box::new(PatternStrategy::many_sided(mapping, 3, pairs))
            }
            StrategyKind::Blacksmith => {
                let k = (rps / 4).max(2);
                Box::new(PatternStrategy::blacksmith(mapping, 5, k, trial_seed))
            }
            StrategyKind::SameRegion => {
                let k = (regions.rows_per_region() / 4).max(2);
                Box::new(PatternStrategy::same_region(mapping, regions, 3, k))
            }
            StrategyKind::Feint => {
                let feints = (regions.rows_per_region() - 4).clamp(1, 4);
                Box::new(Feinting::new(mapping, regions, 3, feints, 6))
            }
            StrategyKind::DecoyFlood => {
                let decoys = (mapping.rows_per_bank() / 128).clamp(8, 56);
                Box::new(DecoyFlood::new(mapping, victim, decoys, 2))
            }
            StrategyKind::RefreshSync => Box::new(RefreshSyncStrategy::new(*mapping)),
        }
    }
}

/// Schedule roster entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Hammer every slot.
    Burst,
    /// Hammer once every `gap + 1` slots (the swept parameter).
    Paced(u32),
    /// Back off while ALERT is asserted plus a cooldown.
    Adaptive(u64),
}

impl ScheduleKind {
    /// The default swept roster: flat-out, two pacings, ALERT-adaptive.
    pub fn roster() -> Vec<ScheduleKind> {
        vec![
            ScheduleKind::Burst,
            ScheduleKind::Paced(1),
            ScheduleKind::Paced(4),
            ScheduleKind::Adaptive(64),
        ]
    }

    /// Builds the schedule for one trial.
    pub fn build(&self) -> Box<dyn Schedule> {
        match self {
            ScheduleKind::Burst => Box::new(Burst),
            ScheduleKind::Paced(gap) => Box::new(Paced::new(*gap)),
            ScheduleKind::Adaptive(cooldown) => Box::new(AlertAdaptive::new(*cooldown)),
        }
    }
}

/// Mitigator roster entries, with the NBO bound each is judged against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigatorKind {
    /// MIRZA at the Table VII TRHD=1000 design point (FTH scaled).
    Mirza1000,
    /// PRAC + MOAT provisioned for the scaled TRHD.
    PracMoat,
    /// Mithril with a 2K-entry (scaled) table.
    Mithril,
    /// DDR4-era sampling TRR (known-broken baseline).
    Trr,
}

impl MitigatorKind {
    /// Every implemented mitigator.
    pub fn all() -> Vec<MitigatorKind> {
        vec![
            MitigatorKind::Mirza1000,
            MitigatorKind::PracMoat,
            MitigatorKind::Mithril,
            MitigatorKind::Trr,
        ]
    }

    /// Stable CSV label.
    pub fn label(&self) -> &'static str {
        match self {
            MitigatorKind::Mirza1000 => "mirza-1000",
            MitigatorKind::PracMoat => "prac-moat",
            MitigatorKind::Mithril => "mithril-2k",
            MitigatorKind::Trr => "trr",
        }
    }

    /// Builds the mitigator for one trial and returns it with the bound
    /// its guarantee promises at this scale. Tracker design thresholds
    /// divide by `shrink` like every other per-window quantity.
    pub fn build(
        &self,
        scale: &Scale,
        geom: &Geometry,
        trial_seed: u64,
    ) -> (Box<dyn Mitigator>, u32) {
        let scaled_trh = ((4_800 / scale.shrink) as u32).max(16);
        match self {
            MitigatorKind::Mirza1000 => {
                let cfg = scale.mirza_config(MirzaConfig::trhd_1000());
                let bound = cfg.safe_trhd();
                (Box::new(Mirza::new(cfg, geom, trial_seed)), bound)
            }
            MitigatorKind::PracMoat => {
                let trhd = ((1_000 / scale.shrink) as u32).max(16);
                (Box::new(PracMoat::for_trhd(trhd, geom)), trhd)
            }
            MitigatorKind::Mithril => {
                let entries = (2_048 / scale.shrink as usize).max(64);
                (Box::new(Mithril::new(entries, 1, geom)), scaled_trh)
            }
            MitigatorKind::Trr => (Box::new(Trr::ddr4_like(geom)), scaled_trh),
        }
    }
}

/// One matrix sweep specification.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Evaluation scale (geometry shrink and master seed).
    pub scale: Scale,
    /// Strategy axis.
    pub strategies: Vec<StrategyKind>,
    /// Schedule axis.
    pub schedules: Vec<ScheduleKind>,
    /// Mitigator axis.
    pub mitigators: Vec<MitigatorKind>,
    /// Monte-Carlo cell seeds (derived from the master seed).
    pub seeds: Vec<u64>,
    /// Trials per cell.
    pub trials: u32,
    /// Full refresh-pointer walks per trial.
    pub walks: u64,
}

impl MatrixSpec {
    /// The standard roster at `scale`: full strategy/schedule/mitigator
    /// axes, two seeds, three trials per cell, two walks per trial.
    pub fn for_scale(scale: Scale) -> Self {
        let seeds = vec![scale.seed, scale.seed.wrapping_add(1)];
        MatrixSpec {
            scale,
            strategies: StrategyKind::all(),
            schedules: ScheduleKind::roster(),
            mitigators: MitigatorKind::all(),
            seeds,
            trials: 3,
            walks: 2,
        }
    }

    /// Number of matrix cells (rows of the CSV).
    pub fn cells(&self) -> usize {
        self.strategies.len() * self.schedules.len() * self.mitigators.len() * self.seeds.len()
    }
}

/// One evaluated matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Strategy label (from the built strategy, so it carries parameters).
    pub strategy: String,
    /// Schedule label.
    pub schedule: String,
    /// Mitigator label.
    pub mitigator: &'static str,
    /// Cell seed.
    pub seed: u64,
    /// Trials run.
    pub trials: u32,
    /// Trials whose victim reached the bound.
    pub successes: u32,
    /// Worst per-row unmitigated ACT burden across trials.
    pub max_row_acts: u32,
    /// The bound the cell was judged against.
    pub bound: u32,
    /// Attacker ACTs summed over trials.
    pub total_acts: u64,
    /// ALERT back-offs summed over trials.
    pub alerts: u64,
}

impl MatrixCell {
    /// Success probability over the cell's trials.
    pub fn success_prob(&self) -> f64 {
        f64::from(self.successes) / f64::from(self.trials.max(1))
    }
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Every cell, in deterministic roster order.
    pub cells: Vec<MatrixCell>,
    /// The spec that produced it.
    pub spec: MatrixSpec,
}

/// Runs the full matrix. Emits one `attack_cell` event per cell through
/// `telemetry` (greppable from the JSONL event stream).
pub fn run_matrix(spec: &MatrixSpec, telemetry: &Telemetry) -> MatrixResult {
    let geom = spec.scale.geometry();
    let timing = TimingParams::ddr5_6000();
    let refs = spec.walks * u64::from(geom.refs_per_full_walk());
    let regions_per_bank = MirzaConfig::trhd_1000().regions_per_bank;
    let mut cells = Vec::with_capacity(spec.cells());
    for strat in &spec.strategies {
        for sched in &spec.schedules {
            for mit in &spec.mitigators {
                for &seed in &spec.seeds {
                    let cell = run_cell(
                        spec,
                        &geom,
                        &timing,
                        regions_per_bank,
                        *strat,
                        *sched,
                        *mit,
                        seed,
                        refs,
                    );
                    telemetry.event(
                        0,
                        names::EV_ATTACK_CELL,
                        &[
                            ("strategy", Json::from(cell.strategy.as_str())),
                            ("schedule", Json::from(cell.schedule.as_str())),
                            ("mitigator", Json::from(cell.mitigator)),
                            ("seed", Json::from(cell.seed)),
                            ("trials", Json::from(cell.trials)),
                            ("successes", Json::from(cell.successes)),
                            ("success", Json::from(cell.successes > 0)),
                            ("max_row_acts", Json::from(cell.max_row_acts)),
                            ("bound", Json::from(cell.bound)),
                        ],
                    );
                    cells.push(cell);
                }
            }
        }
    }
    MatrixResult {
        cells,
        spec: spec.clone(),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    spec: &MatrixSpec,
    geom: &Geometry,
    timing: &TimingParams,
    regions_per_bank: u32,
    strat: StrategyKind,
    sched: ScheduleKind,
    mit: MitigatorKind,
    seed: u64,
    refs: u64,
) -> MatrixCell {
    let mut successes = 0u32;
    let mut max_row_acts = 0u32;
    let mut total_acts = 0u64;
    let mut alerts = 0u64;
    let mut bound = 0u32;
    let mut strategy_label = String::new();
    let mut schedule_label = String::new();
    for trial in 0..spec.trials {
        let trial_seed = seed.wrapping_mul(1_000).wrapping_add(u64::from(trial));
        let (mut mitigator, cell_bound) = mit.build(&spec.scale, geom, trial_seed);
        bound = cell_bound;
        // Strategies address rows through the mitigator's own mapping when
        // it exposes one (MIRZA randomizes R2SA), else the plain geometry.
        let mapping = mitigator
            .mapping()
            .copied()
            .unwrap_or_else(|| RowMapping::for_geometry(Default::default(), geom));
        let regions = RegionMap::new(geom.rows_per_bank, regions_per_bank);
        let mut strategy = strat.build(&mapping, &regions, trial_seed);
        let mut schedule = sched.build();
        strategy_label = strategy.label();
        schedule_label = schedule.label();
        let targets = strategy.target_rows();
        let report = if targets.is_empty() {
            run_attack(
                mitigator.as_mut(),
                geom,
                timing,
                0,
                strategy.as_mut(),
                schedule.as_mut(),
                &AnyRow,
                cell_bound,
                refs,
            )
        } else {
            run_attack(
                mitigator.as_mut(),
                geom,
                timing,
                0,
                strategy.as_mut(),
                schedule.as_mut(),
                &TargetRows::new(targets),
                cell_bound,
                refs,
            )
        };
        if report.success {
            successes += 1;
        }
        max_row_acts = max_row_acts.max(report.max_row_acts);
        total_acts += report.outcome.total_acts;
        alerts += report.outcome.alerts;
    }
    MatrixCell {
        strategy: strategy_label,
        schedule: schedule_label,
        mitigator: mit.label(),
        seed,
        trials: spec.trials,
        successes,
        max_row_acts,
        bound,
        total_acts,
        alerts,
    }
}

impl MatrixResult {
    /// Serializes the matrix as CSV with the pinned [`CSV_HEADER`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.4},{},{},{},{}",
                c.strategy,
                c.schedule,
                c.mitigator,
                c.seed,
                c.trials,
                c.successes,
                c.success_prob(),
                c.max_row_acts,
                c.bound,
                c.total_acts,
                c.alerts
            );
        }
        out
    }

    /// Human-readable summary: per (strategy, mitigator), the schedules
    /// that succeeded, worst burden vs bound.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "Attack matrix: {} cells ({} strategies x {} schedules x {} mitigators x {} seeds, {} trials each)\n\
             strategy             schedule      mitigator    p(success)  max row ACTs  bound\n",
            self.cells.len(),
            self.spec.strategies.len(),
            self.spec.schedules.len(),
            self.spec.mitigators.len(),
            self.spec.seeds.len(),
            self.spec.trials,
        );
        // One line per (strategy, schedule, mitigator): pool the seeds.
        let mut i = 0;
        while i < self.cells.len() {
            let group_end = i + self.spec.seeds.len().min(self.cells.len() - i);
            let group = &self.cells[i..group_end];
            let first = &group[0];
            let trials: u32 = group.iter().map(|c| c.trials).sum();
            let successes: u32 = group.iter().map(|c| c.successes).sum();
            let max: u32 = group.iter().map(|c| c.max_row_acts).max().unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<20} {:<13} {:<12} {:>9.2}   {:>12}  {:>5}",
                first.strategy,
                first.schedule,
                first.mitigator,
                f64::from(successes) / f64::from(trials.max(1)),
                max,
                first.bound,
            );
            i = group_end;
        }
        let broken: Vec<&MatrixCell> = self.cells.iter().filter(|c| c.successes > 0).collect();
        let _ = writeln!(
            out,
            "\n{} of {} cells compromised their mitigator",
            broken.len(),
            self.cells.len()
        );
        out
    }

    /// JSON summary for run manifests.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                let mut j = Json::obj();
                j.push("strategy", c.strategy.as_str())
                    .push("schedule", c.schedule.as_str())
                    .push("mitigator", c.mitigator)
                    .push("seed", c.seed)
                    .push("trials", c.trials)
                    .push("successes", c.successes)
                    .push("success_prob", c.success_prob())
                    .push("max_row_acts", c.max_row_acts)
                    .push("bound", c.bound)
                    .push("total_acts", c.total_acts)
                    .push("alerts", c.alerts);
                j
            })
            .collect();
        doc.push("scale", self.spec.scale.to_json())
            .push("cells", cells);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> MatrixSpec {
        let mut spec = MatrixSpec::for_scale(Scale::smoke());
        spec.strategies = vec![StrategyKind::DoubleSided, StrategyKind::DecoyFlood];
        spec.schedules = vec![ScheduleKind::Burst, ScheduleKind::Paced(4)];
        spec.mitigators = vec![MitigatorKind::Mirza1000, MitigatorKind::Trr];
        spec.seeds = vec![1];
        spec.trials = 1;
        spec.walks = 1;
        spec
    }

    #[test]
    fn matrix_covers_the_roster() {
        let spec = tiny_spec();
        let r = run_matrix(&spec, &Telemetry::disabled());
        assert_eq!(r.cells.len(), spec.cells());
        let csv = r.to_csv();
        assert!(csv.starts_with(CSV_HEADER));
        assert_eq!(csv.lines().count(), 1 + spec.cells());
    }

    #[test]
    fn mirza_holds_where_trr_breaks() {
        let spec = tiny_spec();
        let r = run_matrix(&spec, &Telemetry::disabled());
        let cell = |strategy: &str, mitigator: &str, schedule: &str| {
            r.cells
                .iter()
                .find(|c| {
                    c.strategy.starts_with(strategy)
                        && c.mitigator == mitigator
                        && c.schedule == schedule
                })
                .unwrap()
        };
        assert_eq!(cell("double-sided", "mirza-1000", "burst").successes, 0);
        assert!(
            cell("decoy", "trr", "burst").successes > 0,
            "decoy flood must break sampling TRR: {:?}",
            cell("decoy", "trr", "burst")
        );
    }

    #[test]
    fn default_fast_spec_meets_the_issue_floor() {
        let spec = MatrixSpec::for_scale(Scale::fast());
        assert!(spec.cells() >= 48);
        assert!(spec.strategies.len() >= 4);
        assert!(spec.schedules.len() >= 3);
        assert!(spec.mitigators.len() >= 2);
        assert!(spec.seeds.len() >= 2);
    }

    #[test]
    fn attack_cell_events_are_emitted() {
        let mut spec = tiny_spec();
        spec.strategies = vec![StrategyKind::DoubleSided];
        spec.schedules = vec![ScheduleKind::Burst];
        spec.mitigators = vec![MitigatorKind::Trr];
        let t = Telemetry::enabled();
        let _ = run_matrix(&spec, &t);
        let n = t
            .with_recorder(|r| r.event_counts.get("attack_cell").copied())
            .unwrap();
        assert_eq!(n, Some(spec.cells() as u64));
    }
}
