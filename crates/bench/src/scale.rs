//! Experiment scaling.
//!
//! The paper simulates 250 M-instruction SimPoints against a full 32 ms
//! refresh window. To keep the whole table/figure suite runnable on a
//! laptop, the default modes shrink the *time axis* self-consistently by a
//! factor `shrink`: bank height, tREFW, LLC capacity, workload footprints
//! and MIRZA's FTH all divide by the same factor, so per-window
//! accumulation (the quantity CGF filtering keys on) keeps the paper's
//! proportions. `--full` runs the unscaled configuration.

use mirza_core::config::MirzaConfig;
use mirza_dram::geometry::Geometry;
use mirza_dram::time::Ps;
use mirza_sim::config::{MitigationConfig, SimConfig};
use mirza_telemetry::Json;
use mirza_workloads::spec::all_workload_names;

/// A consistent scaling of the evaluation setup.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Divisor on bank height / tREFW / LLC / footprints / FTH (1 = paper).
    pub shrink: u64,
    /// Instructions per core per run.
    pub instructions: u64,
    /// Workloads included.
    pub workloads: Vec<&'static str>,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Default mode: 32x shrink, about one scaled refresh window of
    /// execution for memory-bound workloads, all 24 workloads.
    pub fn fast() -> Self {
        Scale {
            shrink: 32,
            instructions: 2_500_000,
            workloads: all_workload_names(),
            seed: 0xC0FFEE,
        }
    }

    /// Tiny mode for unit tests and criterion benches.
    pub fn smoke() -> Self {
        Scale {
            shrink: 64,
            instructions: 400_000,
            workloads: vec!["lbm", "fotonik3d", "bc"],
            seed: 0xC0FFEE,
        }
    }

    /// Minimal mode for criterion benches: one workload, one bank-walk.
    pub fn bench() -> Self {
        Scale {
            shrink: 64,
            instructions: 100_000,
            workloads: vec!["lbm"],
            seed: 0xC0FFEE,
        }
    }

    /// Paper-scale mode (hours of wall clock).
    pub fn full() -> Self {
        Scale {
            shrink: 1,
            instructions: 150_000_000,
            workloads: all_workload_names(),
            seed: 0xC0FFEE,
        }
    }

    /// The scaled channel geometry.
    ///
    /// # Panics
    /// Panics if `shrink` does not divide the bank height into a power of
    /// two of at least 2048 rows.
    pub fn geometry(&self) -> Geometry {
        let mut g = Geometry::ddr5_32gb();
        g.rows_per_bank = (u64::from(g.rows_per_bank) / self.shrink) as u32;
        assert!(
            g.rows_per_bank >= 2048 && g.rows_per_bank.is_power_of_two(),
            "invalid shrink factor {}",
            self.shrink
        );
        g.validate().expect("scaled geometry is consistent");
        g
    }

    /// The scaled refresh window (32 ms / shrink).
    pub fn t_refw(&self) -> Ps {
        Ps::from_ms(32) / self.shrink
    }

    /// Scales a MIRZA configuration: FTH divides with the window.
    pub fn mirza_config(&self, mut cfg: MirzaConfig) -> MirzaConfig {
        cfg.fth = ((u64::from(cfg.fth) / self.shrink) as u32).max(8);
        cfg
    }

    /// Builds the simulation configuration for a mitigation at this scale.
    pub fn sim_config(&self, mitigation: MitigationConfig) -> SimConfig {
        let mut cfg = SimConfig::new(mitigation, self.instructions);
        cfg.geometry = self.geometry();
        cfg.t_refw = Some(self.t_refw());
        cfg.llc_sets = ((16 * 1024) / self.shrink as usize).max(64);
        cfg.footprint_divisor = self.shrink;
        cfg.seed = self.seed;
        cfg
    }

    /// Serializes the scale for run manifests.
    pub fn to_json(&self) -> Json {
        let workloads: Vec<Json> = self.workloads.iter().map(|w| Json::from(*w)).collect();
        let mut doc = Json::obj();
        doc.push("shrink", self.shrink)
            .push("instructions", self.instructions)
            .push("workloads", workloads)
            .push("seed", self.seed);
        doc
    }

    /// The worst-case ACTs per bank per (scaled) tREFW — the paper's 621K
    /// at shrink = 1.
    pub fn worst_case_acts_per_refw(&self) -> f64 {
        let t = mirza_dram::timing::TimingParams::ddr5_6000();
        let per_interval = (t.t_refi.as_ps() - t.t_rfc.as_ps()) as f64 / t.t_rc.as_ps() as f64;
        let refs = self.t_refw().as_ps() / t.t_refi.as_ps();
        per_interval * refs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_geometry_is_consistent() {
        let s = Scale::fast();
        let g = s.geometry();
        assert_eq!(g.rows_per_bank, 4096);
        // The refresh walk still exactly covers the bank within tREFW.
        let refs_in_window = s.t_refw().as_ps() / 3_900_000;
        assert_eq!(refs_in_window, u64::from(g.refs_per_full_walk()));
    }

    #[test]
    fn smoke_geometry_is_consistent() {
        let g = Scale::smoke().geometry();
        assert_eq!(g.rows_per_bank, 2048);
        assert_eq!(g.rows_per_subarray(), 16);
    }

    #[test]
    fn full_scale_is_the_paper_config() {
        let s = Scale::full();
        assert_eq!(s.geometry(), Geometry::ddr5_32gb());
        assert_eq!(s.t_refw(), Ps::from_ms(32));
        assert!((s.worst_case_acts_per_refw() - 621_000.0).abs() < 15_000.0);
    }

    #[test]
    fn mirza_fth_scales_with_window() {
        let s = Scale::fast();
        let cfg = s.mirza_config(MirzaConfig::trhd_1000());
        assert_eq!(cfg.fth, 1500 / 32);
        assert_eq!(cfg.mint_w, 12, "window is a rate, not a budget");
    }

    #[test]
    fn sim_config_carries_the_scaling() {
        let s = Scale::fast();
        let cfg = s.sim_config(MitigationConfig::None);
        assert_eq!(cfg.llc_sets, 512);
        assert_eq!(cfg.footprint_divisor, 32);
        assert_eq!(cfg.t_refw, Some(Ps::from_ms(1)));
    }

    #[test]
    fn scale_serializes_for_manifests() {
        let j = Scale::smoke().to_json();
        assert_eq!(j.get("shrink").unwrap().as_u64(), Some(64));
        assert_eq!(j.get("instructions").unwrap().as_u64(), Some(400_000));
        let ws = j.get("workloads").unwrap().as_arr().unwrap();
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].as_str(), Some("lbm"));
    }

    #[test]
    #[should_panic(expected = "invalid shrink")]
    fn rejects_overshrink() {
        let s = Scale {
            shrink: 1024,
            ..Scale::fast()
        };
        let _ = s.geometry();
    }
}
