//! Extension studies beyond the paper's published tables: ablations of the
//! design choices DESIGN.md calls out (mapping, QTH, queue size, region
//! count) and a PARA cost comparison.

use std::fmt::Write as _;

use mirza_core::config::MirzaConfig;
use mirza_core::rct::ResetPolicy;
use mirza_dram::address::MappingScheme;
use mirza_sim::config::MitigationConfig;

use crate::lab::Lab;

fn mirza_with(lab: &Lab, cfg: MirzaConfig) -> MitigationConfig {
    MitigationConfig::Mirza {
        cfg: lab.scale().mirza_config(cfg),
        policy: ResetPolicy::Safe,
    }
}

/// Ablation: strided vs sequential R2SA mapping for the full MIRZA stack
/// (slowdown, escape rate and ALERT rate — Table VI only reports
/// filtering).
pub fn ablation_mapping(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Ablation: row-to-subarray mapping (MIRZA @ TRHD=1K)\n\
         mapping      slowdown   remaining ACTs   alerts/100 tREFI\n",
    );
    for (name, mapping) in [
        ("strided", MappingScheme::Strided),
        ("sequential", MappingScheme::Sequential),
    ] {
        let cfg = mirza_with(
            lab,
            MirzaConfig {
                mapping,
                ..MirzaConfig::trhd_1000()
            },
        );
        let slow = lab.avg_slowdown(cfg);
        let (mut cand, mut acts, mut alerts) = (0u64, 0u64, 0.0f64);
        let ws = lab.workloads();
        for w in &ws {
            let r = lab.run(cfg, w);
            cand += r.mitigation.acts_candidate;
            acts += r.mitigation.acts_observed;
            alerts += r.alerts_per_100_trefi();
        }
        let _ = writeln!(
            out,
            "{name:<12} {slow:>7.2}%   {:>12.2}%   {:>10.2}",
            100.0 * cand as f64 / acts.max(1) as f64,
            alerts / ws.len() as f64
        );
    }
    out
}

/// Ablation: Queue Tardiness Threshold. Lower QTH means earlier ALERTs
/// (more time overhead) but a tighter Phase-C budget (better TRH).
pub fn ablation_qth(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Ablation: QTH (MIRZA @ TRHD=1K structures)\n\
         QTH   slowdown   alerts/100 tREFI   safe-TRHD bound\n",
    );
    for qth in [4u32, 8, 16, 32, 64] {
        let base = MirzaConfig {
            qth,
            ..MirzaConfig::trhd_1000()
        };
        let bound = base.safe_trhd();
        let cfg = mirza_with(lab, base);
        let slow = lab.avg_slowdown(cfg);
        let mut alerts = 0.0;
        let ws = lab.workloads();
        for w in &ws {
            alerts += lab.run(cfg, w).alerts_per_100_trefi();
        }
        let _ = writeln!(
            out,
            "{qth:<5} {slow:>7.2}%   {:>12.2}       {bound}",
            alerts / ws.len() as f64
        );
    }
    out
}

/// Ablation: MIRZA-Q capacity for the *full* design (Table V covers only
/// the naive variant).
pub fn ablation_queue(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Ablation: MIRZA-Q capacity (full MIRZA @ TRHD=1K)\n\
         entries   slowdown   alerts/100 tREFI\n",
    );
    for q in [1usize, 2, 4, 8] {
        let cfg = mirza_with(
            lab,
            MirzaConfig {
                queue_capacity: q,
                ..MirzaConfig::trhd_1000()
            },
        );
        let slow = lab.avg_slowdown(cfg);
        let mut alerts = 0.0;
        let ws = lab.workloads();
        for w in &ws {
            alerts += lab.run(cfg, w).alerts_per_100_trefi();
        }
        let _ = writeln!(
            out,
            "{q:<9} {slow:>7.2}%   {:>12.2}",
            alerts / ws.len() as f64
        );
    }
    out
}

/// Ablation: RCT region count at fixed FTH budget. Fewer, larger regions
/// cost less SRAM but aggregate more traffic per counter (escaping more).
pub fn ablation_regions(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Ablation: RCT regions per bank (FTH scaled as at TRHD=1K)\n\
         regions   SRAM/bank   slowdown   remaining ACTs\n",
    );
    for regions in [32u32, 64, 128, 256] {
        let base = MirzaConfig {
            regions_per_bank: regions,
            ..MirzaConfig::trhd_1000()
        };
        let sram = base.sram_bytes_per_bank();
        let cfg = mirza_with(lab, base);
        let slow = lab.avg_slowdown(cfg);
        let (mut cand, mut acts) = (0u64, 0u64);
        for w in lab.workloads() {
            let r = lab.run(cfg, w);
            cand += r.mitigation.acts_candidate;
            acts += r.mitigation.acts_observed;
        }
        let _ = writeln!(
            out,
            "{regions:<9} {sram:<11} {slow:>7.2}%   {:>10.2}%",
            100.0 * cand as f64 / acts.max(1) as f64
        );
    }
    out
}

/// PARA comparison: the classic stateless baseline pays with victim
/// refresh energy where MIRZA pays (almost) nothing.
pub fn para_comparison(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Extension: PARA vs MIRZA at TRHD=1K\n\
         tracker   slowdown   refresh power overhead\n",
    );
    let para = MitigationConfig::Para { p: 23.0 / 1000.0 };
    let mirza = lab.mirza(1000);
    for (name, cfg) in [("para", para), ("mirza", mirza)] {
        let slow = lab.avg_slowdown(cfg);
        let mut pow = 0.0;
        let ws = lab.workloads();
        for w in &ws {
            pow += lab.run(cfg, w).refresh_power_overhead_pct();
        }
        let _ = writeln!(
            out,
            "{name:<9} {slow:>7.2}%   {:>10.2}%",
            pow / ws.len() as f64
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn mapping_ablation_prefers_strided() {
        let mut lab = Lab::new(Scale::smoke());
        let t = ablation_mapping(&mut lab);
        let grab = |name: &str| -> f64 {
            let line = t.lines().find(|l| l.starts_with(name)).unwrap();
            line.split_whitespace()
                .nth(2)
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        // Remaining-ACT share: strided must escape less.
        assert!(grab("strided") <= grab("sequential") + 1e-9, "{t}");
    }

    #[test]
    fn qth_bound_tightens_with_lower_qth() {
        let mut lab = Lab::new(Scale::smoke());
        let t = ablation_qth(&mut lab);
        let bounds: Vec<u32> = t
            .lines()
            .skip(2)
            .filter_map(|l| l.split_whitespace().last()?.parse().ok())
            .collect();
        assert_eq!(bounds.len(), 5, "{t}");
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "{bounds:?}");
    }

    #[test]
    fn region_ablation_shows_sram_tradeoff() {
        let mut lab = Lab::new(Scale::smoke());
        let t = ablation_regions(&mut lab);
        assert!(t.contains("32"), "{t}");
        assert!(t.contains("256"), "{t}");
    }

    #[test]
    fn para_pays_refresh_power() {
        let mut lab = Lab::new(Scale::smoke());
        let t = para_comparison(&mut lab);
        let grab = |name: &str| -> f64 {
            let line = t.lines().find(|l| l.starts_with(name)).unwrap();
            line.split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        assert!(grab("para") > grab("mirza"), "{t}");
    }
}
