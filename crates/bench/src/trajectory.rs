//! Performance trajectory: loads every committed `BENCH_*.json`
//! document, orders them by capture time, and renders the table (and
//! regression flags) behind `repro trajectory`. The Python twin for CI is
//! `scripts/perf_gate.py`; both implement the same soft-gate semantics.

use std::path::Path;

use mirza_telemetry::Json;

use crate::perfbench::BenchDoc;

/// Relative slowdown between the two newest points beyond which a target
/// is flagged. Wall-clock on shared CI runners is noisy; 15% separates
/// real algorithmic regressions from scheduler jitter.
pub const NOISE_THRESHOLD_PCT: f64 = 15.0;

/// Loads and parses every `BENCH_*.json` under `dir`, sorted by capture
/// time (ties by file name). Unparseable or foreign-schema files are
/// skipped with a warning on stderr rather than sinking the whole table.
pub fn load_dir(dir: &Path) -> Vec<BenchDoc> {
    let mut docs: Vec<(u64, String, BenchDoc)> = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let path = entry.path();
        let parsed = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|v| BenchDoc::from_json(&v));
        match parsed {
            Some(doc) => docs.push((doc.unix_time, name, doc)),
            None => eprintln!("warning: skipping unreadable bench doc {}", path.display()),
        }
    }
    docs.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    docs.into_iter().map(|(_, _, d)| d).collect()
}

/// Percent change from `base` to `new` (positive = slower).
fn pct(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

/// Renders the trajectory table: one row per document, oldest first,
/// with the suite median and its delta against the previous point.
pub fn table(docs: &[BenchDoc]) -> String {
    if docs.is_empty() {
        return "no BENCH_*.json documents found\n".to_string();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>9} {:>12} {:>10} {:>8} {:>8}\n",
        "rev", "targets", "repeats", "suite_med_s", "delta_pct", "profile", "host"
    ));
    let mut prev: Option<f64> = None;
    for doc in docs {
        let suite = doc.suite_median_secs();
        let delta = prev.map_or_else(|| "-".to_string(), |p| format!("{:+.1}%", pct(p, suite)));
        let profile = doc
            .provenance
            .get("cargo_profile")
            .and_then(Json::as_str)
            .unwrap_or("?");
        let host = doc
            .provenance
            .get("host")
            .map(|h| {
                format!(
                    "{}/{}",
                    h.get("os").and_then(Json::as_str).unwrap_or("?"),
                    h.get("arch").and_then(Json::as_str).unwrap_or("?")
                )
            })
            .unwrap_or_else(|| "?".to_string());
        out.push_str(&format!(
            "{:<16} {:>8} {:>9} {:>12.3} {:>10} {:>8} {:>8}\n",
            doc.git_rev(),
            doc.targets.len(),
            doc.repeats,
            suite,
            delta,
            profile,
            host
        ));
        prev = Some(suite);
    }
    out
}

/// Compares the two newest documents target-by-target and returns one
/// line per regression beyond `threshold_pct`. Targets are matched by
/// name; the suite total is checked too. Fewer than two points, or
/// points from different hosts/profiles, yield no flags (apples to
/// oranges is noise, not signal).
pub fn regressions(docs: &[BenchDoc], threshold_pct: f64) -> Vec<String> {
    let [.., prev, last] = docs else {
        return Vec::new();
    };
    let comparable = |d: &BenchDoc, k: &str| d.provenance.get(k).cloned().unwrap_or(Json::Null);
    if comparable(prev, "host") != comparable(last, "host")
        || comparable(prev, "cargo_profile") != comparable(last, "cargo_profile")
    {
        return vec![format!(
            "note: {} and {} ran on different hosts/profiles; skipping comparison",
            prev.git_rev(),
            last.git_rev()
        )];
    }
    let mut out = Vec::new();
    let suite_delta = pct(prev.suite_median_secs(), last.suite_median_secs());
    if suite_delta > threshold_pct {
        out.push(format!(
            "PERF-REGRESSION suite: {:.3}s -> {:.3}s ({suite_delta:+.1}% > {threshold_pct}%)",
            prev.suite_median_secs(),
            last.suite_median_secs()
        ));
    }
    for t in &last.targets {
        let Some(base) = prev.targets.iter().find(|p| p.name == t.name) else {
            continue;
        };
        let delta = pct(base.wall_secs.median, t.wall_secs.median);
        if delta > threshold_pct {
            out.push(format!(
                "PERF-REGRESSION {}: {:.3}s -> {:.3}s ({delta:+.1}% > {threshold_pct}%)",
                t.name, base.wall_secs.median, t.wall_secs.median
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfbench::{Stats, Target};

    fn doc(rev: &str, unix_time: u64, medians: &[(&str, f64)]) -> BenchDoc {
        let mut prov = Json::obj();
        let mut host = Json::obj();
        host.push("os", "linux")
            .push("arch", "x86_64")
            .push("cpus", 8u64);
        prov.push("git_rev", rev)
            .push("cargo_profile", "release")
            .push("host", host);
        BenchDoc {
            provenance: prov,
            unix_time,
            scale: Json::obj(),
            warmup: 1,
            repeats: 3,
            targets: medians
                .iter()
                .map(|(name, m)| Target {
                    name: (*name).to_string(),
                    wall_secs: Stats::from_samples(&[*m]),
                    sim_ns_per_sec: Stats::from_samples(&[1.0]),
                    sim_time_ps: 1,
                    instructions: 1,
                    commands: 1,
                    quanta: 1,
                })
                .collect(),
            total_wall_secs: medians.iter().map(|(_, m)| m).sum(),
            phase_breakdown: Json::Null,
            opportunity: Json::Null,
            parallel: Json::Null,
        }
    }

    #[test]
    fn load_dir_sorts_by_time_and_skips_garbage() {
        let dir = std::env::temp_dir().join(format!("mirza_traj_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        doc("bbb", 200, &[("table4/lbm", 1.0)])
            .write(&dir.join("BENCH_bbb.json"))
            .unwrap();
        doc("aaa", 100, &[("table4/lbm", 2.0)])
            .write(&dir.join("BENCH_aaa.json"))
            .unwrap();
        std::fs::write(dir.join("BENCH_junk.json"), "{ not json").unwrap();
        std::fs::write(dir.join("unrelated.json"), "{}").unwrap();
        let docs = load_dir(&dir);
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].git_rev(), "aaa");
        assert_eq!(docs[1].git_rev(), "bbb");
        let text = table(&docs);
        assert!(text.contains("aaa") && text.contains("bbb"));
        assert!(text.contains("-50.0%"), "delta column present:\n{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn regressions_flag_only_beyond_threshold() {
        let a = doc("aaa", 100, &[("table4/lbm", 1.0), ("table4/bc", 1.0)]);
        let b = doc("bbb", 200, &[("table4/lbm", 1.05), ("table4/bc", 1.5)]);
        let flags = regressions(&[a.clone(), b], NOISE_THRESHOLD_PCT);
        assert_eq!(flags.len(), 2, "suite +27.5% and bc +50%: {flags:?}");
        assert!(flags[0].contains("suite"));
        assert!(flags[1].contains("table4/bc"));
        // Improvements and within-noise drift are quiet.
        let c = doc("ccc", 300, &[("table4/lbm", 1.0), ("table4/bc", 1.0)]);
        assert!(regressions(&[a.clone(), c], NOISE_THRESHOLD_PCT).is_empty());
        // A single point has nothing to compare against.
        assert!(regressions(&[a], NOISE_THRESHOLD_PCT).is_empty());
    }

    #[test]
    fn cross_host_points_are_not_compared() {
        let a = doc("aaa", 100, &[("table4/lbm", 1.0)]);
        let mut b = doc("bbb", 200, &[("table4/lbm", 9.0)]);
        let mut host = Json::obj();
        host.push("os", "macos")
            .push("arch", "aarch64")
            .push("cpus", 4u64);
        let mut prov = Json::obj();
        prov.push("git_rev", "bbb")
            .push("cargo_profile", "release")
            .push("host", host);
        b.provenance = prov;
        let flags = regressions(&[a, b], NOISE_THRESHOLD_PCT);
        assert_eq!(flags.len(), 1);
        assert!(flags[0].contains("different hosts"));
    }
}
