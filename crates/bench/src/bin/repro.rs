//! `repro` — regenerate any table or figure of the MIRZA paper.
//!
//! ```text
//! repro <experiment|all|PATH.trace> [--smoke|--fast|--full] [--seed N]
//!       [--jobs N] [--resume] [--csv FILE] [--json FILE] [--epochs NS]
//!       [--epoch-dir DIR] [--audit] [--strict-audit]
//!       [--compare BASELINE.json] [--faults PLAN] [--watchdog SECS]
//!       [--trace-chrome FILE] [--opportunity] [--legacy-loop] [--out FILE]
//!       [--repeats N] [--warmup N] [--list] [--quiet]
//!
//! experiments:
//!   table1 table2 table3 table4 table5 table6 table7 table8 table9
//!   table10 table11 table12 table13
//!   fig3 fig6 fig9 fig11a fig11b fig13 fig14
//!   security dos-sim attack-matrix attribution watchdog-demo
//!   perfbench trajectory report
//! ```
//!
//! `--fast` (default) runs the self-consistent 1/16-scaled setup; `--full`
//! runs the paper-scale configuration (hours); `--smoke` is a seconds-long
//! sanity pass over three workloads.
//!
//! Probe flags: `--epochs NS` samples registered metrics every NS simulated
//! nanoseconds into per-run JSONL streams (`--epoch-dir`, default
//! `epochs/`); `--audit` attaches the independent DDR5 protocol auditor
//! (`--strict-audit` additionally fails the run on any violation);
//! `--compare BASELINE.json` re-runs the named experiments and exits
//! nonzero if the deterministic manifest sections diverge from the
//! baseline.
//!
//! Robustness flags: `--faults PLAN` injects a canned fault plan
//! (`rct-seu`, `abo-drop`, `queue-loss`, `refresh-skip`, `trace-corrupt`,
//! each tunable as `name:key=value,...`) into every simulation and adds a
//! fault summary plus security verdict to each manifest run record;
//! `--watchdog SECS` arms a wall-clock forward-progress watchdog per run.
//! A target ending in `.trace` (or containing `/`) replays that trace
//! file on every core instead of a named experiment; `watchdog-demo`
//! deliberately stalls to demonstrate the watchdog abort path.
//!
//! Observability flags: `--trace-chrome FILE` attaches the request-
//! lifecycle span layer to every simulated run and writes one Chrome
//! trace-event JSON per run (`<stem>_<label>-<workload>.<ext>` next to
//! FILE; load in `chrome://tracing` or Perfetto). The `attribution`
//! target sweeps the Table-4 mitigators over four representative
//! workloads with spans armed and writes the per-bucket stall breakdown
//! to `results/attribution.csv` (`--csv` overrides; `--json` adds a
//! manifest-style summary).
//!
//! Performance observatory: `perfbench` times the end-to-end Table-4
//! suite (`--warmup`/`--repeats` tune the sampling, `--out` overrides the
//! default `results/BENCH_<gitrev>.json`) and appends a provenance-stamped
//! trajectory point; `trajectory` prints the committed `BENCH_*.json`
//! history with soft regression flags (twin of `scripts/perf_gate.py`);
//! `report` assembles `results/report.html` (`--out` overrides) from the
//! trajectory, attribution CSV, attack-matrix CSV, and epoch streams.
//! `--opportunity` arms the event-core opportunity counters on manifest
//! runs (idle scheduler passes, skip-gap and skip-taken histograms).
//! `--legacy-loop` drives simulations with the retired eager per-quantum
//! loop instead of the next-event core — an escape hatch for bisecting;
//! the two are bit-identical by contract (`sim/tests/event_core.rs`).
//!
//! Parallelism: `--jobs N` runs independent simulation/matrix cells on the
//! supervised work-pool (default: `available_parallelism`; `--jobs 1`
//! forces the serial path). Output is bit-identical at any job count —
//! results merge into canonical enumeration order before anything is
//! written. The attack matrix checkpoints each completed cell into
//! `<csv>.journal.jsonl` (fsync'd); after a crash or kill, `--resume`
//! replays the journal's completed cells and schedules only the remainder,
//! and the journal is deleted on a fully-successful run. Cells that still
//! fail after the pool's bounded retry degrade the campaign: partial
//! outputs are written, the failures are listed (and recorded in the
//! manifest `failures` section), and the process exits 7.
//!
//! Exit codes mirror `SimError`: 0 success, 1 usage/comparison failure,
//! 2 unknown workload, 3 trace parse, 4 config, 5 I/O, 6 watchdog,
//! 7 cell panic / degraded parallel campaign.

use std::process::ExitCode;

use mirza_bench::analytic;
use mirza_bench::attack_matrix::{run_matrix_supervised, MatrixRunConfig, MatrixSpec};
use mirza_bench::attacks_exp;
use mirza_bench::attribution::run_attribution;
use mirza_bench::compare::compare_manifests;
use mirza_bench::experiments;
use mirza_bench::extensions;
use mirza_bench::lab::Lab;
use mirza_bench::perfbench::{self, PerfBench};
use mirza_bench::report;
use mirza_bench::scale::Scale;
use mirza_bench::trajectory;
use mirza_sim::config::MitigationConfig;
use mirza_sim::faults::{FaultPlan, CANNED_PLANS};
use mirza_sim::runner::{run_stalled, run_tracefile};
use mirza_sim::SimError;
use mirza_telemetry::{EventSink, Json, Telemetry};

const SIM_EXPERIMENTS: &[&str] = &[
    // Ordered so the cheapest, highest-value experiments complete first;
    // the ALERT-storm-heavy Table V and the attacker simulation come last.
    "table4", "fig6", "fig11a", "fig11b", "table8", "fig13", "table9", "table6", "fig3", "table13",
    "table5", "dos-sim",
];
const ANALYTIC_EXPERIMENTS: &[&str] = &[
    "table1", "table2", "table3", "table7", "fig9", "table10", "table11", "table12",
];
const ATTACK_EXPERIMENTS: &[&str] = &["fig14", "security"];
// Deliberately not part of `all`: keeps `--compare` manifests and the CI
// bench gate bit-identical to the pre-framework baselines.
const MATRIX_EXPERIMENTS: &[&str] = &["attack-matrix", "attribution"];
// Also standalone: the performance observatory reads/writes results/
// artifacts rather than producing paper tables.
const OBSERVATORY_EXPERIMENTS: &[&str] = &["perfbench", "trajectory", "report"];
const EXTENSION_EXPERIMENTS: &[&str] = &[
    "ablation-mapping",
    "ablation-qth",
    "ablation-queue",
    "ablation-regions",
    "para",
];

fn run_experiment(name: &str, lab: &mut Lab) -> Option<String> {
    Some(match name {
        "table1" => analytic::table1(),
        "table2" => analytic::table2_report(),
        "table3" => analytic::table3(),
        "table7" => analytic::table7(),
        "fig9" => analytic::fig9(),
        "table10" => analytic::table10_report(),
        "table11" => analytic::table11_report(),
        "table12" => analytic::table12(),
        "table4" => experiments::table4(lab),
        "fig3" => experiments::fig3(lab),
        "table5" => experiments::table5(lab),
        "fig6" => experiments::fig6(lab),
        "table6" => experiments::table6(lab),
        "fig11a" => experiments::fig11a(lab),
        "fig11b" => experiments::fig11b(lab),
        "table8" => experiments::table8(lab),
        "table9" => experiments::table9(lab),
        "fig13" => experiments::fig13(lab),
        "table13" => experiments::table13(lab),
        "fig14" => attacks_exp::fig14(),
        "security" => attacks_exp::security_sweep(1),
        "dos-sim" => attacks_exp::dos_sim(lab),
        "ablation-mapping" => extensions::ablation_mapping(lab),
        "ablation-qth" => extensions::ablation_qth(lab),
        "ablation-queue" => extensions::ablation_queue(lab),
        "ablation-regions" => extensions::ablation_regions(lab),
        "para" => extensions::para_comparison(lab),
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment|all|ablations|PATH.trace> [--smoke|--fast|--full] \
         [--seed N] [--csv FILE] [--json FILE] [--epochs NS] [--epoch-dir DIR] [--audit] \
         [--strict-audit] [--compare BASELINE.json] [--faults PLAN] [--watchdog SECS] \
         [--trace-chrome FILE] [--opportunity] [--legacy-loop] [--out FILE] [--repeats N] \
         [--warmup N] [--jobs N] [--resume] [--list] [--quiet]\n\
         experiments: {} {} {} {} {} {} watchdog-demo\n\
         fault plans: {} (tunable as name:key=value,...)",
        ANALYTIC_EXPERIMENTS.join(" "),
        SIM_EXPERIMENTS.join(" "),
        ATTACK_EXPERIMENTS.join(" "),
        MATRIX_EXPERIMENTS.join(" "),
        EXTENSION_EXPERIMENTS.join(" "),
        OBSERVATORY_EXPERIMENTS.join(" "),
        CANNED_PLANS.join(" "),
    );
    ExitCode::FAILURE
}

/// Prints a `SimError` in structured form and maps it to its dedicated
/// process exit code (see the module docs for the table).
fn fail(err: &SimError) -> ExitCode {
    eprintln!("error: {err}");
    ExitCode::from(err.exit_code())
}

/// Replays a plain-text trace file on every core at the selected scale.
fn replay_trace(path: &std::path::Path, scale: Scale, watchdog: Option<u64>) -> ExitCode {
    let mut cfg = scale.sim_config(MitigationConfig::None);
    cfg.watchdog_wall = watchdog.map(std::time::Duration::from_secs);
    match run_tracefile(&cfg, path, Telemetry::disabled()) {
        Ok(report) => {
            println!(
                "replayed {}: {} instructions, mpki {:.2}, {} ACTs",
                path.display(),
                report.instructions,
                report.mpki(),
                report.device.acts
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

/// Deliberately stalls a run so the idle watchdog fires; demonstrates the
/// abort path end to end (flushed telemetry, structured message, exit 6).
fn watchdog_demo(scale: Scale) -> ExitCode {
    let mut cfg = scale.sim_config(MitigationConfig::None);
    cfg.cores = 1;
    // Keep the demo fast: the stalled loop burns one pass per quantum.
    cfg.watchdog_idle_quanta = 50_000;
    eprintln!("stalling a run on purpose; expecting a watchdog abort ...");
    match run_stalled(&cfg, "lbm", Telemetry::disabled()) {
        Ok(_) => {
            eprintln!("error: stalled run unexpectedly completed");
            ExitCode::FAILURE
        }
        Err(e) => fail(&e),
    }
}

/// Runs the strategy x schedule x mitigator sweep on the supervised
/// work-pool. Writes the per-cell CSV (default
/// `results/attack_matrix.csv`, `--csv` overrides), a JSONL `attack_cell`
/// event stream next to it, and — with `--json` — a manifest-style
/// summary. Fully deterministic for a fixed `--seed` at any `--jobs`
/// count. Every completed cell is checkpointed into a journal next to the
/// CSV; `--resume` replays it after a crash. A campaign with cells that
/// still fail after retry writes partial outputs, keeps the journal for
/// `--resume`, and exits 7.
fn attack_matrix_cmd(
    scale: Scale,
    csv: Option<std::path::PathBuf>,
    json: Option<std::path::PathBuf>,
    jobs: usize,
    resume: bool,
    verbose: bool,
) -> ExitCode {
    let spec = MatrixSpec::for_scale(scale);
    let csv_path = csv.unwrap_or_else(|| std::path::PathBuf::from("results/attack_matrix.csv"));
    let events_path = csv_path.with_file_name("attack_events.jsonl");
    let journal_path = csv_path.with_file_name(format!(
        "{}.journal.jsonl",
        csv_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "attack_matrix".to_string())
    ));
    if let Some(dir) = csv_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let events_file = match std::fs::File::create(&events_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot create {}: {e}", events_path.display());
            return ExitCode::FAILURE;
        }
    };
    let telemetry = Telemetry::enabled().with_events(EventSink::new(Box::new(
        std::io::BufWriter::new(events_file),
    )));
    let run_cfg = MatrixRunConfig {
        jobs,
        journal: Some(journal_path.clone()),
        resume,
    };
    let outcome = run_matrix_supervised(&spec, &telemetry, &run_cfg);
    let result = &outcome.result;
    if let Err(e) = std::fs::write(&csv_path, result.to_csv()) {
        eprintln!("error: cannot write {}: {e}", csv_path.display());
        return ExitCode::FAILURE;
    }
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, result.to_json().to_string_pretty()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!("{}", result.summary());
    if verbose {
        eprintln!(
            "wrote {} ({} cells) and {}",
            csv_path.display(),
            result.cells.len(),
            events_path.display()
        );
        if outcome.resumed > 0 {
            eprintln!(
                "resumed {} completed cell(s) from {}",
                outcome.resumed,
                journal_path.display()
            );
        }
    }
    if !outcome.complete() {
        eprintln!(
            "error: {} cell(s) failed after retry; partial outputs written, \
             journal kept at {} (rerun with --resume):",
            outcome.failures.len(),
            journal_path.display()
        );
        for f in &outcome.failures {
            eprintln!("  {} ({} attempt(s)): {}", f.id, f.attempts, f.error);
        }
        // Exit with the CellPanic code: the campaign is degraded, not dead.
        return ExitCode::from(
            SimError::CellPanic {
                cell: String::new(),
                payload: String::new(),
            }
            .exit_code(),
        );
    }
    ExitCode::SUCCESS
}

/// Runs the attribution sweep: Table-4 mitigators x representative
/// workloads with the span layer armed. Writes the per-bucket CSV
/// (default `results/attribution.csv`, `--csv` overrides) and — with
/// `--json` — a manifest-style summary. `--trace-chrome` additionally
/// writes one Chrome trace per run.
fn attribution_cmd(
    scale: Scale,
    csv: Option<std::path::PathBuf>,
    json: Option<std::path::PathBuf>,
    trace_chrome: Option<std::path::PathBuf>,
    jobs: usize,
    verbose: bool,
) -> ExitCode {
    let csv_path = csv.unwrap_or_else(|| std::path::PathBuf::from("results/attribution.csv"));
    if let Some(dir) = csv_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let mut lab = Lab::new(scale);
    lab.verbose = verbose;
    lab.jobs = jobs;
    lab.attribution = true;
    lab.trace_chrome = trace_chrome;
    let result = run_attribution(&mut lab);
    if let Err(e) = std::fs::write(&csv_path, result.to_csv()) {
        eprintln!("error: cannot write {}: {e}", csv_path.display());
        return ExitCode::FAILURE;
    }
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, result.to_json().to_string_pretty()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!("{}", result.summary());
    if verbose {
        eprintln!("wrote {} ({} rows)", csv_path.display(), result.rows.len());
    }
    ExitCode::SUCCESS
}

/// Runs the perfbench suite and writes the trajectory point (default
/// `results/BENCH_<gitrev>.json`, `--out` overrides).
fn perfbench_cmd(
    scale: Scale,
    out: Option<std::path::PathBuf>,
    warmup: Option<u64>,
    repeats: Option<u64>,
    jobs: usize,
    verbose: bool,
) -> ExitCode {
    let mut bench = PerfBench::new(scale);
    bench.verbose = verbose;
    bench.jobs = jobs;
    if let Some(w) = warmup {
        bench.warmup = w;
    }
    if let Some(r) = repeats {
        bench.repeats = r.max(1);
    }
    let doc = bench.run();
    let path = out.unwrap_or_else(|| std::path::PathBuf::from("results").join(doc.file_name()));
    print!("{}", perfbench::summary_table(&doc));
    if let Err(e) = doc.write(&path) {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    if verbose {
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Prints the perf trajectory over every committed `BENCH_*.json` plus
/// soft regression flags. Always exits 0: the hard gate (with `--strict`)
/// is `scripts/perf_gate.py` in CI.
fn trajectory_cmd() -> ExitCode {
    let docs = trajectory::load_dir(std::path::Path::new("results"));
    print!("{}", trajectory::table(&docs));
    for flag in trajectory::regressions(&docs, trajectory::NOISE_THRESHOLD_PCT) {
        println!("{flag}");
    }
    ExitCode::SUCCESS
}

/// Assembles the unified HTML run report from `results/` (default output
/// `results/report.html`, `--out` overrides).
fn report_cmd(out: Option<std::path::PathBuf>, verbose: bool) -> ExitCode {
    let results = std::path::Path::new("results");
    let path = out.unwrap_or_else(|| results.join("report.html"));
    if let Err(e) = report::write(results, &path) {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    if verbose {
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn list_experiments() -> ExitCode {
    for (category, names) in [
        (
            "analytic (closed-form, no simulation)",
            ANALYTIC_EXPERIMENTS,
        ),
        ("simulation (run by `all`)", SIM_EXPERIMENTS),
        ("attack (run by `all`)", ATTACK_EXPERIMENTS),
        ("attack matrix (standalone)", MATRIX_EXPERIMENTS),
        ("extensions (run by `ablations`)", EXTENSION_EXPERIMENTS),
        ("observatory (standalone)", OBSERVATORY_EXPERIMENTS),
    ] {
        println!("{category}:");
        for name in names {
            println!("  {name}");
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::fast();
    let mut target: Option<String> = None;
    let mut verbose = true;
    let mut csv: Option<std::path::PathBuf> = None;
    let mut json: Option<std::path::PathBuf> = None;
    let mut epochs_ns: Option<u64> = None;
    let mut epoch_dir: Option<std::path::PathBuf> = None;
    let mut audit = false;
    let mut strict_audit = false;
    let mut compare: Option<std::path::PathBuf> = None;
    let mut faults: Option<String> = None;
    let mut watchdog: Option<u64> = None;
    let mut trace_chrome: Option<std::path::PathBuf> = None;
    let mut opportunity = false;
    let mut legacy_loop = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut repeats: Option<u64> = None;
    let mut warmup: Option<u64> = None;
    let mut jobs: usize = mirza_runner::default_jobs();
    let mut resume = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--opportunity" => opportunity = true,
            "--legacy-loop" => legacy_loop = true,
            "--out" => match it.next() {
                Some(p) => out = Some(std::path::PathBuf::from(p)),
                None => return usage(),
            },
            "--repeats" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => repeats = Some(n),
                _ => return usage(),
            },
            "--warmup" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) => warmup = Some(n),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = n,
                _ => return usage(),
            },
            "--resume" => resume = true,
            "--faults" => match it.next() {
                Some(p) => faults = Some(p.clone()),
                None => return usage(),
            },
            "--watchdog" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(s) if s > 0 => watchdog = Some(s),
                _ => return usage(),
            },
            "--smoke" => scale = Scale::smoke(),
            "--fast" => scale = Scale::fast(),
            "--full" => scale = Scale::full(),
            "--quiet" => verbose = false,
            "--list" => return list_experiments(),
            "--audit" => audit = true,
            "--strict-audit" => {
                audit = true;
                strict_audit = true;
            }
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => scale.seed = s,
                None => return usage(),
            },
            "--epochs" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(ns) if ns > 0 => epochs_ns = Some(ns),
                _ => return usage(),
            },
            "--epoch-dir" => match it.next() {
                Some(p) => epoch_dir = Some(std::path::PathBuf::from(p)),
                None => return usage(),
            },
            "--csv" => match it.next() {
                Some(p) => csv = Some(std::path::PathBuf::from(p)),
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(p) => json = Some(std::path::PathBuf::from(p)),
                None => return usage(),
            },
            "--compare" => match it.next() {
                Some(p) => compare = Some(std::path::PathBuf::from(p)),
                None => return usage(),
            },
            "--trace-chrome" => match it.next() {
                Some(p) => trace_chrome = Some(std::path::PathBuf::from(p)),
                None => return usage(),
            },
            name if !name.starts_with('-') && target.is_none() => {
                target = Some(name.to_string());
            }
            _ => return usage(),
        }
    }
    let Some(target) = target else {
        return usage();
    };
    let fault_plan = match faults.as_deref().map(FaultPlan::parse) {
        Some(Ok(plan)) => Some(plan),
        Some(Err(e)) => return fail(&e),
        None => None,
    };
    if target.ends_with(".trace") || target.contains('/') {
        return replay_trace(std::path::Path::new(&target), scale, watchdog);
    }
    if target == "watchdog-demo" {
        return watchdog_demo(scale);
    }
    if target == "attack-matrix" {
        return attack_matrix_cmd(scale, csv, json, jobs, resume, verbose);
    }
    if target == "attribution" {
        return attribution_cmd(scale, csv, json, trace_chrome, jobs, verbose);
    }
    if target == "perfbench" {
        return perfbench_cmd(scale, out, warmup, repeats, jobs, verbose);
    }
    if target == "trajectory" {
        return trajectory_cmd();
    }
    if target == "report" {
        return report_cmd(out, verbose);
    }
    let mut lab = Lab::new(scale);
    lab.jobs = jobs;
    lab.opportunity = opportunity;
    lab.legacy_loop = legacy_loop;
    lab.fault_plan = fault_plan;
    lab.watchdog_wall_secs = watchdog;
    lab.manifest_path = json.clone();
    lab.verbose = verbose;
    lab.csv_path = csv;
    lab.epoch_ps = epochs_ns.map(|ns| ns.saturating_mul(1_000));
    if let Some(dir) = epoch_dir {
        lab.epoch_dir = dir;
    }
    lab.audit = audit;
    lab.trace_chrome = trace_chrome;
    if verbose {
        // One status line roughly every 10 M retired instructions keeps
        // paper-scale runs observably alive without flooding fast mode.
        lab.heartbeat_every = Some(10_000_000);
    }
    if json.is_some() || compare.is_some() {
        lab.enable_manifest();
    }
    let names: Vec<&str> = if target == "all" {
        ANALYTIC_EXPERIMENTS
            .iter()
            .chain(SIM_EXPERIMENTS)
            .chain(ATTACK_EXPERIMENTS)
            .copied()
            .collect()
    } else if target == "ablations" {
        EXTENSION_EXPERIMENTS.to_vec()
    } else {
        vec![target.as_str()]
    };
    for name in names {
        lab.begin_experiment(name);
        // Warm the cells this driver will request on the work pool; the
        // driver then replays them in its natural (serial) order so the
        // manifest and CSV stay bit-identical to `--jobs 1`. A no-op for
        // analytic experiments and at `--jobs 1`.
        let planned = experiments::planned_runs(name, &lab);
        lab.prewarm(&planned);
        match run_experiment(name, &mut lab) {
            Some(table) => {
                println!("{table}");
            }
            None => return usage(),
        }
    }
    if let Some(path) = json {
        if let Err(e) = lab.write_manifest(&path) {
            eprintln!("error: cannot write manifest {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if verbose {
            eprintln!("wrote manifest {}", path.display());
        }
    }
    if strict_audit && !lab.audit_failures().is_empty() {
        eprintln!("error: protocol audit failed:");
        for (key, count) in lab.audit_failures() {
            eprintln!("  {key}: {count} violation(s)");
        }
        return ExitCode::FAILURE;
    }
    if let Some(path) = compare {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(text) => match Json::parse(&text) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("error: cannot parse baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let current = lab.manifest_json().expect("manifest mode is on");
        let diffs = compare_manifests(&baseline, &current);
        if !diffs.is_empty() {
            eprintln!(
                "error: {} difference(s) vs baseline {}:",
                diffs.len(),
                path.display()
            );
            for d in diffs.iter().take(50) {
                eprintln!("  {d}");
            }
            if diffs.len() > 50 {
                eprintln!("  ... and {} more", diffs.len() - 50);
            }
            return ExitCode::FAILURE;
        }
        if verbose {
            eprintln!("manifest matches baseline {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
