//! `spotcheck` — paper-scale validation run: one memory-intensive workload
//! at the *unscaled* configuration (128K-row banks, 32 ms tREFW, 16 MB LLC,
//! FTH=1500), under baseline / MIRZA-1K / PRAC. Confirms that the fast-mode
//! scaling preserves the operating point (escape rate, ALERT rate,
//! slowdown ordering) at the paper's own scale.
//!
//! Usage: `spotcheck [workload] [instructions-per-core-in-millions]`

use mirza_bench::lab::Lab;
use mirza_bench::scale::Scale;
use mirza_sim::config::MitigationConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args
        .first()
        .map(String::as_str)
        .unwrap_or("lbm")
        .to_string();
    let millions: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(150);
    let mut scale = Scale::full();
    scale.instructions = millions * 1_000_000;
    scale.workloads = vec![Box::leak(workload.clone().into_boxed_str())];
    let mut lab = Lab::new(scale);
    lab.verbose = true;

    let base = lab.baseline(&workload);
    eprintln!(
        "baseline done: {} ACTs over {} ({} windows)",
        base.device.acts,
        base.elapsed,
        base.elapsed.as_ps() as f64 / base.t_refw.as_ps() as f64
    );
    let mirza_cfg = lab.mirza(1000);
    let mirza = lab.run(mirza_cfg, &workload);
    let prac = lab.run(MitigationConfig::PracAbo { trhd: 1000 }, &workload);

    println!("paper-scale spot check: {workload}, {millions}M instructions/core");
    println!(
        "windows simulated: {:.2} (tREFW = 32 ms)",
        base.elapsed.as_ps() as f64 / base.t_refw.as_ps() as f64
    );
    let (mean, sd) = base.acts_per_subarray_per_trefw();
    println!("ACT/subarray/tREFW: {mean:.0} +- {sd:.0}  (paper Table IV scale)");
    println!(
        "MIRZA-1K:  slowdown {:+.2}%, escapes {:.3}%, {:.2} ALERTs/100 tREFI, refresh power {:.3}%",
        mirza.slowdown_pct(&base),
        100.0 * mirza.mitigation.escape_fraction(),
        mirza.alerts_per_100_trefi(),
        mirza.refresh_power_overhead_pct(),
    );
    println!(
        "PRAC:      slowdown {:+.2}%, ALERTs {:.2}/100 tREFI",
        prac.slowdown_pct(&base),
        prac.alerts_per_100_trefi(),
    );
}
