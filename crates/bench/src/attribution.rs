//! Attribution sweep: per-bucket slowdown attribution across mitigators
//! (`repro attribution`).
//!
//! Runs every mitigator of the Table-4 roster (plus the unprotected
//! baseline) over a small set of representative workloads with the
//! request-lifecycle span layer attached, and emits one CSV row per run
//! breaking the total request stall into the six attribution buckets
//! (queue conflict, bank timing, ABO/ALERT, mitigative refresh, regular
//! refresh, RFM). The rows answer *why* a mitigator is slow, where the
//! Table-4 manifest only says *how much* slower it is.
//!
//! `scripts/attribution_gate.py` fails CI when the CSV header drifts,
//! when any row's buckets fail to sum exactly to its total stall, or
//! when the baseline rows diverge from `results/baseline_fast.json`.

use std::fmt::Write as _;

use mirza_sim::config::MitigationConfig;
use mirza_telemetry::{Json, StallBucket};

use crate::lab::Lab;

/// Fixed CSV header; `scripts/attribution_gate.py` fails CI on any
/// drift. The six `*_ps` bucket columns follow [`StallBucket::ALL`]
/// order.
pub const CSV_HEADER: &str = "label,workload,elapsed_ps,ipc_sum,slowdown_pct,requests,\
     total_stall_ps,queue_conflict_ps,bank_timing_ps,abo_alert_ps,mitigative_ref_ps,\
     refresh_ps,rfm_ps";

/// Representative workloads for the sweep: two memory-bound SPEC codes,
/// one mixed, one GAP graph kernel. Intersected with the scale's roster
/// so `--smoke` (three workloads) still runs.
pub const WORKLOADS: &[&str] = &["lbm", "fotonik3d", "mcf", "bc"];

/// The mitigators swept, in presentation order: unprotected baseline
/// first, then the four Table-4 mechanisms (MIRZA, PRAC+ABO, Mithril,
/// TRR).
pub fn roster(lab: &Lab) -> Vec<MitigationConfig> {
    // Same table scaling as the attack matrix: 2K entries at full scale.
    let entries = (2_048 / lab.scale().shrink as usize).max(64);
    vec![
        MitigationConfig::None,
        lab.mirza(1000),
        MitigationConfig::PracAbo { trhd: 1000 },
        MitigationConfig::Mithril {
            entries,
            refs_per_mit: 1,
        },
        MitigationConfig::Trr,
    ]
}

/// One CSV row: a (mitigator, workload) run with its attribution totals.
#[derive(Debug, Clone)]
pub struct AttributionRow {
    /// Mitigator label (`MitigationConfig::label`).
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Simulated run length in picoseconds.
    pub elapsed_ps: u64,
    /// Sum of per-core IPCs.
    pub ipc_sum: f64,
    /// Percent slowdown vs the unprotected baseline of the same workload.
    pub slowdown_pct: f64,
    /// Completed memory requests the span layer attributed.
    pub requests: u64,
    /// Total attributed stall in picoseconds.
    pub total_stall_ps: u64,
    /// Per-bucket stall, indexed by [`StallBucket::index`].
    pub buckets_ps: [u64; StallBucket::ALL.len()],
}

impl AttributionRow {
    /// Percentage of total stall charged to `bucket` (0 when idle).
    pub fn pct(&self, bucket: StallBucket) -> f64 {
        if self.total_stall_ps == 0 {
            0.0
        } else {
            100.0 * self.buckets_ps[bucket.index()] as f64 / self.total_stall_ps as f64
        }
    }

    fn to_json(&self) -> Json {
        let mut buckets = Json::obj();
        for b in StallBucket::ALL {
            buckets.push(b.key(), self.buckets_ps[b.index()]);
        }
        let mut doc = Json::obj();
        doc.push("label", self.label.as_str())
            .push("workload", self.workload.as_str())
            .push("elapsed_ps", self.elapsed_ps)
            .push("ipc_sum", self.ipc_sum)
            .push("slowdown_pct", self.slowdown_pct)
            .push("requests", self.requests)
            .push("total_stall_ps", self.total_stall_ps)
            .push("buckets_ps", buckets);
        doc
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct AttributionResult {
    /// One row per (mitigator, workload), roster-major.
    pub rows: Vec<AttributionRow>,
}

impl AttributionResult {
    /// Serializes to CSV, header first.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for r in &self.rows {
            let _ = write!(
                out,
                "{},{},{},{:.6},{:.4},{},{}",
                r.label,
                r.workload,
                r.elapsed_ps,
                r.ipc_sum,
                r.slowdown_pct,
                r.requests,
                r.total_stall_ps
            );
            for b in StallBucket::ALL {
                let _ = write!(out, ",{}", r.buckets_ps[b.index()]);
            }
            out.push('\n');
        }
        out
    }

    /// Manifest-style JSON (`--json`).
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self.rows.iter().map(AttributionRow::to_json).collect();
        let mut doc = Json::obj();
        doc.push("experiment", "attribution").push("rows", rows);
        doc
    }

    /// Human-readable table: stall share per bucket, plus the manifest
    /// slowdown the shares explain.
    pub fn summary(&self) -> String {
        let mut out = String::from(
            "Attribution: stall share by bucket (% of total request stall)\n\
             label                workload    slowdown   queue    bank     abo    mref     ref     rfm\n",
        );
        for r in &self.rows {
            let _ = write!(
                out,
                "{:<20} {:<11} {:>7.2}%",
                r.label, r.workload, r.slowdown_pct
            );
            for b in StallBucket::ALL {
                let _ = write!(out, " {:>6.1}%", r.pct(b));
            }
            out.push('\n');
        }
        out
    }
}

/// The cells [`run_attribution`] will request, for [`Lab::prewarm`]:
/// the full roster (baseline included) over the in-scope workloads.
pub fn planned_runs(lab: &Lab) -> Vec<(MitigationConfig, &'static str)> {
    let in_scope: Vec<&'static str> = WORKLOADS
        .iter()
        .copied()
        .filter(|w| lab.workloads().contains(w))
        .collect();
    roster(lab)
        .into_iter()
        .flat_map(|m| in_scope.iter().map(move |&w| (m, w)))
        .collect()
}

/// Runs the sweep. The caller must arm `lab.attribution` (the `repro
/// attribution` command does) so every report carries an attribution
/// summary. At `lab.jobs > 1` the cells are prewarmed on the work pool
/// first; the reduction below stays serial and roster-major either way.
pub fn run_attribution(lab: &mut Lab) -> AttributionResult {
    assert!(
        lab.attribution || lab.trace_chrome.is_some(),
        "attribution sweep needs lab.attribution (or a chrome trace) armed"
    );
    let planned = planned_runs(lab);
    lab.prewarm(&planned);
    let in_scope: Vec<&'static str> = WORKLOADS
        .iter()
        .copied()
        .filter(|w| lab.workloads().contains(w))
        .collect();
    let mut rows = Vec::new();
    for mitigation in roster(lab) {
        let label = mitigation.label();
        for workload in &in_scope {
            let baseline = lab.baseline(workload);
            let report = lab.run(mitigation, workload);
            let a = report
                .attribution
                .as_ref()
                .expect("span layer was armed, report must carry attribution");
            rows.push(AttributionRow {
                label: label.clone(),
                workload: (*workload).to_string(),
                elapsed_ps: report.elapsed.as_ps(),
                ipc_sum: report.core_ipc.iter().sum(),
                slowdown_pct: report.slowdown_pct(&baseline),
                requests: a.requests,
                total_stall_ps: a.total_stall_ps,
                buckets_ps: a.buckets_ps,
            });
        }
    }
    AttributionResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn sweep_covers_the_roster_and_conserves_every_row() {
        let mut lab = Lab::new(Scale::bench());
        lab.attribution = true;
        let result = run_attribution(&mut lab);
        // bench scale hosts only lbm; 5 roster entries x 1 workload.
        assert_eq!(result.rows.len(), 5);
        let labels: Vec<&str> = result.rows.iter().map(|r| r.label.as_str()).collect();
        assert!(labels.contains(&"baseline"));
        assert!(labels.contains(&"trr"));
        assert!(labels.iter().any(|l| l.starts_with("prac-trhd")));
        assert!(labels.iter().any(|l| l.starts_with("mithril-")));
        assert!(labels.iter().any(|l| l.starts_with("mirza-")));
        for r in &result.rows {
            assert!(
                r.requests > 0,
                "{}/{} attributed no requests",
                r.label,
                r.workload
            );
            let sum: u64 = r.buckets_ps.iter().sum();
            assert_eq!(
                sum, r.total_stall_ps,
                "{}/{} leaks stall",
                r.label, r.workload
            );
        }
        let baseline = &result.rows[0];
        assert_eq!(baseline.label, "baseline");
        assert!(baseline.slowdown_pct.abs() < 1e-9);
    }

    #[test]
    fn csv_round_trips_through_the_header() {
        let mut lab = Lab::new(Scale::bench());
        lab.attribution = true;
        let result = run_attribution(&mut lab);
        let csv = result.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        let cols = CSV_HEADER.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
    }
}
