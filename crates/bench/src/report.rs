//! `repro report`: assembles the unified HTML run report from whatever
//! artifacts are present in `results/` — the `BENCH_*.json` perf
//! trajectory, slowdown-attribution buckets (`attribution.csv`), the
//! attack-matrix success heatmap (`attack_matrix.csv`), and epoch JSONL
//! sparklines. Missing inputs degrade to an explicit "no data" section,
//! so the report is always well-formed.
//!
//! Rendering primitives (page scaffold, SVG charts) live in
//! `mirza_telemetry::report`; this module only loads and shapes data.

use std::path::Path;

use mirza_telemetry::report::{esc, heatmap, line_chart, sparkline, stacked_bars, Series};
use mirza_telemetry::{HtmlReport, Json};

use crate::perfbench::BenchDoc;
use crate::trajectory;

/// The six stall-attribution buckets, in `attribution.csv` column order.
const BUCKETS: [&str; 6] = [
    "queue_conflict",
    "bank_timing",
    "abo_alert",
    "mitigative_ref",
    "refresh",
    "rfm",
];

/// Parses a headered CSV into rows of `column -> value` lookups. Our CSVs
/// are machine-written without quoting, so a plain comma split is exact.
fn parse_csv(text: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let mut lines = text.lines();
    let header: Vec<String> = lines
        .next()
        .map(|h| h.split(',').map(str::trim).map(String::from).collect())
        .unwrap_or_default();
    let rows = lines
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(str::trim).map(String::from).collect())
        .collect();
    (header, rows)
}

fn col(header: &[String], row: &[String], name: &str) -> Option<String> {
    let i = header.iter().position(|h| h == name)?;
    row.get(i).cloned()
}

/// Perf-trajectory section: suite-median line chart over revisions plus a
/// per-target table for the newest document.
fn trajectory_section(docs: &[BenchDoc]) -> String {
    if docs.is_empty() {
        return "<p class=\"empty\">no BENCH_*.json documents in results/</p>".to_string();
    }
    let series = vec![Series {
        name: "suite median (s)".to_string(),
        points: docs
            .iter()
            .enumerate()
            .map(|(i, d)| (i as f64, d.suite_median_secs()))
            .collect(),
    }];
    let labels: Vec<String> = docs.iter().map(|d| d.git_rev().to_string()).collect();
    let mut html = line_chart(&series, "seconds", &labels);
    let last = docs.last().expect("non-empty");
    html.push_str(&format!(
        "<h3>Per-target medians @ {}</h3>\n<table><tr><th>target</th>\
         <th>median_s</th><th>stddev_s</th><th>instr/s</th></tr>\n",
        esc(last.git_rev())
    ));
    for t in &last.targets {
        let med = t.wall_secs.median.max(1e-12);
        html.push_str(&format!(
            "<tr><td>{}</td><td>{:.3}</td><td>{:.4}</td><td>{:.3e}</td></tr>\n",
            esc(&t.name),
            t.wall_secs.median,
            t.wall_secs.stddev,
            t.instructions as f64 / med
        ));
    }
    html.push_str("</table>\n");
    // Host-phase breakdown and opportunity rollup of the newest point.
    if let Some(Json::Obj(pairs)) = last.phase_breakdown.get("phases") {
        let rows: Vec<(String, Vec<f64>)> = vec![(
            "host phases".to_string(),
            pairs
                .iter()
                .map(|(_, v)| v.get("secs").and_then(Json::as_f64).unwrap_or(0.0))
                .collect(),
        )];
        let legend: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        html.push_str("<h3>Host-phase breakdown (profiled pass)</h3>\n");
        html.push_str(&stacked_bars(&rows, &legend));
    }
    if let Some(frac) = last
        .opportunity
        .get("idle_pass_frac")
        .and_then(Json::as_f64)
    {
        let gap = last
            .opportunity
            .get("skip_gap_ns")
            .and_then(|g| g.get("p50"))
            .and_then(Json::as_f64);
        let taken = last
            .opportunity
            .get("skip_taken_ns")
            .and_then(|g| g.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        html.push_str(&format!(
            "<p>Event-core residual: {:.1}% idle scheduler passes, \
             {taken} quantum skips taken{}.</p>\n",
            frac * 100.0,
            gap.map_or_else(String::new, |g| format!(", median skip gap {g:.0} ns"))
        ));
    }
    html
}

/// Attribution section: 100%-stacked stall buckets per mitigator/workload.
fn attribution_section(csv: Option<&str>) -> String {
    let Some(text) = csv else {
        return "<p class=\"empty\">no attribution.csv in results/</p>".to_string();
    };
    let (header, rows) = parse_csv(text);
    let mut bars = Vec::new();
    for row in &rows {
        let label = col(&header, row, "label").unwrap_or_default();
        let workload = col(&header, row, "workload").unwrap_or_default();
        let values: Vec<f64> = BUCKETS
            .iter()
            .map(|b| {
                col(&header, row, &format!("{b}_ps"))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0)
            })
            .collect();
        bars.push((format!("{label}/{workload}"), values));
    }
    if bars.is_empty() {
        return "<p class=\"empty\">attribution.csv has no rows</p>".to_string();
    }
    stacked_bars(&bars, &BUCKETS)
}

/// Attack-matrix section: strategy x mitigator heatmap of mean success
/// probability over schedules and seeds.
fn attack_matrix_section(csv: Option<&str>) -> String {
    let Some(text) = csv else {
        return "<p class=\"empty\">no attack_matrix.csv in results/</p>".to_string();
    };
    let (header, rows) = parse_csv(text);
    let mut strategies: Vec<String> = Vec::new();
    let mut mitigators: Vec<String> = Vec::new();
    let mut cells: std::collections::BTreeMap<(String, String), (f64, u64)> = Default::default();
    for row in &rows {
        let (Some(s), Some(m), Some(p)) = (
            col(&header, row, "strategy"),
            col(&header, row, "mitigator"),
            col(&header, row, "success_prob").and_then(|v| v.parse::<f64>().ok()),
        ) else {
            continue;
        };
        if !strategies.contains(&s) {
            strategies.push(s.clone());
        }
        if !mitigators.contains(&m) {
            mitigators.push(m.clone());
        }
        let e = cells.entry((s, m)).or_insert((0.0, 0));
        e.0 += p;
        e.1 += 1;
    }
    if strategies.is_empty() {
        return "<p class=\"empty\">attack_matrix.csv has no rows</p>".to_string();
    }
    let values: Vec<Vec<Option<f64>>> = strategies
        .iter()
        .map(|s| {
            mitigators
                .iter()
                .map(|m| {
                    cells
                        .get(&(s.clone(), m.clone()))
                        .map(|(sum, n)| sum / *n as f64)
                })
                .collect()
        })
        .collect();
    let mut html = heatmap(&strategies, &mitigators, &values);
    html.push_str(
        "<p>Mean attack success probability over schedules and seeds \
         (0 = defeated, 1 = always lands).</p>\n",
    );
    html
}

/// Epoch section: one sparkline of per-epoch retired instructions for
/// each `epochs_*.jsonl` stream found (capped to keep the page light).
fn epochs_section(epoch_dirs: &[std::path::PathBuf]) -> String {
    let mut streams: Vec<(String, Vec<f64>)> = Vec::new();
    for dir in epoch_dirs {
        let Ok(entries) = std::fs::read_dir(dir) else {
            continue;
        };
        let mut names: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "jsonl")
                    && p.file_name()
                        .is_some_and(|n| n.to_string_lossy().starts_with("epochs_"))
            })
            .collect();
        names.sort();
        for path in names {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let series: Vec<f64> = text
                .lines()
                .filter_map(|l| Json::parse(l).ok())
                .filter_map(|rec| {
                    rec.get("counters")?
                        .get("sim.instructions")
                        .and_then(Json::as_u64)
                        .map(|v| v as f64)
                })
                .collect();
            if !series.is_empty() {
                let name = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().to_string())
                    .unwrap_or_default();
                streams.push((name, series));
            }
            if streams.len() >= 12 {
                break;
            }
        }
    }
    if streams.is_empty() {
        return "<p class=\"empty\">no epoch JSONL streams found (run with --epochs)</p>"
            .to_string();
    }
    let mut html = String::from(
        "<table><tr><th>stream</th><th>instructions / epoch</th><th>epochs</th></tr>\n",
    );
    for (name, series) in &streams {
        html.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            esc(name),
            sparkline(series),
            series.len()
        ));
    }
    html.push_str("</table>\n");
    html
}

/// Builds the full report HTML from the artifacts under `results_dir`.
/// Epoch streams are searched in `results_dir/epochs` and `./epochs`.
pub fn generate(results_dir: &Path) -> String {
    let docs = trajectory::load_dir(results_dir);
    let read = |name: &str| std::fs::read_to_string(results_dir.join(name)).ok();
    let attribution = read("attribution.csv");
    let attack_matrix = read("attack_matrix.csv");
    let mut page = HtmlReport::new("MIRZA run report");
    let sub = match docs.last() {
        Some(d) => {
            let host = d.provenance.get("host").cloned().unwrap_or(Json::Null);
            format!(
                "rev {} · {} · {}/{} · {} trajectory point(s)",
                d.git_rev(),
                d.provenance
                    .get("cargo_profile")
                    .and_then(Json::as_str)
                    .unwrap_or("?"),
                host.get("os").and_then(Json::as_str).unwrap_or("?"),
                host.get("arch").and_then(Json::as_str).unwrap_or("?"),
                docs.len()
            )
        }
        None => "no perf trajectory recorded yet".to_string(),
    };
    page.subtitle(&sub);
    page.section("Performance trajectory", &trajectory_section(&docs));
    page.section(
        "Slowdown attribution",
        &attribution_section(attribution.as_deref()),
    );
    page.section(
        "Attack matrix",
        &attack_matrix_section(attack_matrix.as_deref()),
    );
    page.section(
        "Epoch series",
        &epochs_section(&[results_dir.join("epochs"), "epochs".into()]),
    );
    page.finish()
}

/// Generates the report and writes it to `out`.
pub fn write(results_dir: &Path, out: &Path) -> std::io::Result<()> {
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(out, generate(results_dir))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_results_dir_still_renders_a_wellformed_page() {
        let dir = std::env::temp_dir().join(format!("mirza_report_empty_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let html = generate(&dir);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("Performance trajectory"));
        assert!(html.contains("no BENCH_"));
        assert!(html.contains("no attribution.csv"));
        assert!(html.ends_with("</html>\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn populated_results_dir_renders_charts() {
        let dir = std::env::temp_dir().join(format!("mirza_report_full_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("epochs")).unwrap();
        std::fs::write(
            dir.join("attribution.csv"),
            "label,workload,elapsed_ps,ipc_sum,slowdown_pct,requests,total_stall_ps,\
             queue_conflict_ps,bank_timing_ps,abo_alert_ps,mitigative_ref_ps,refresh_ps,rfm_ps\n\
             mirza-1000,lbm,100,1.0,2.0,10,100,40,30,10,10,5,5\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("attack_matrix.csv"),
            "strategy,schedule,mitigator,seed,trials,successes,success_prob,max_row_acts,\
             bound,total_acts,alerts\n\
             feinting,burst,mirza-1000,1,4,1,0.25,10,20,100,2\n\
             feinting,paced,mirza-1000,1,4,3,0.75,10,20,100,2\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("epochs").join("epochs_baseline-lbm.jsonl"),
            "{\"t_ps\":1000,\"dur_ps\":1000,\"counters\":{\"sim.instructions\":50},\"gauges\":{}}\n\
             {\"t_ps\":2000,\"dur_ps\":1000,\"counters\":{\"sim.instructions\":70},\"gauges\":{}}\n",
        )
        .unwrap();
        let html = generate(&dir);
        // Attribution stacked bar with its row label and bucket legend.
        assert!(html.contains("mirza-1000/lbm"));
        assert!(html.contains("queue_conflict"));
        // Heatmap cell = mean of 0.25 and 0.75.
        assert!(html.contains("0.50"));
        // Epoch sparkline table row.
        assert!(html.contains("epochs_baseline-lbm"));
        assert!(html.contains("polyline"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
