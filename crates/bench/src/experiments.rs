//! Simulation-driven experiment regenerators: every table and figure of the
//! evaluation that needs the full-system simulator.

use std::fmt::Write as _;

use mirza_core::config::MirzaConfig;
use mirza_core::rct::ResetPolicy;
use mirza_dram::address::MappingScheme;
use mirza_sim::config::MitigationConfig;
use mirza_trackers::mint_rfm::MintRfm;

use crate::analytic::table13_attack_column;
use crate::lab::Lab;

/// Table IV: workload characteristics under the unprotected baseline.
pub fn table4(lab: &mut Lab) -> String {
    let shrink = lab.scale().shrink;
    let mut out = format!(
        "Table IV: workload characteristics (scale 1/{shrink}; ACT/SA column \
         also shown x{shrink} for paper comparison)\n\
         workload     MPKI    ACT-PKI  bus%   ACT/SA/tREFW (u+-s)   x{shrink}\n"
    );
    let mut sums = (0.0, 0.0, 0.0, 0.0);
    let ws = lab.workloads();
    for w in &ws {
        let r = lab.baseline(w);
        let (mean, sd) = r.acts_per_subarray_per_trefw();
        let _ = writeln!(
            out,
            "{w:<12} {:>6.1} {:>8.1} {:>6.1} {:>9.0} +- {:<6.0} {:>7.0} +- {:<6.0}",
            r.mpki(),
            r.act_pki(),
            r.bus_utilization_pct(),
            mean,
            sd,
            mean * shrink as f64,
            sd * shrink as f64,
        );
        sums.0 += r.mpki();
        sums.1 += r.act_pki();
        sums.2 += r.bus_utilization_pct();
        sums.3 += mean;
    }
    let n = ws.len() as f64;
    let _ = writeln!(
        out,
        "{:<12} {:>6.1} {:>8.1} {:>6.1} {:>9.0}",
        "average",
        sums.0 / n,
        sums.1 / n,
        sums.2 / n,
        sums.3 / n
    );
    out
}

/// The MINT+RFM configuration for a target TRHD (BAT 24/48/96).
fn mint_rfm(trhd: u32) -> MitigationConfig {
    MitigationConfig::MintRfm {
        bat: MintRfm::bat_for_trhd(trhd),
    }
}

/// Figure 3: slowdown and refresh power of MINT+RFM vs PRAC+ABO.
pub fn fig3(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Figure 3: proactive MINT+RFM vs reactive PRAC+ABO\n\
         TRHD    MINT slowdown   MINT refresh power   PRAC slowdown   PRAC refresh power\n",
    );
    for trhd in [500u32, 1000, 2000] {
        let mint = mint_rfm(trhd);
        let prac = MitigationConfig::PracAbo { trhd };
        let mint_slow = lab.avg_slowdown(mint);
        let prac_slow = lab.avg_slowdown(prac);
        let (mut mint_pow, mut prac_pow) = (0.0, 0.0);
        let ws = lab.workloads();
        for w in &ws {
            mint_pow += lab.run(mint, w).refresh_power_overhead_pct();
            prac_pow += lab.run(prac, w).refresh_power_overhead_pct();
        }
        let n = ws.len() as f64;
        let _ = writeln!(
            out,
            "{trhd:<7} {:>10.2}%   {:>15.1}%   {:>11.2}%   {:>15.2}%",
            mint_slow,
            mint_pow / n,
            prac_slow,
            prac_pow / n
        );
    }
    out
}

/// Table V: Naive MIRZA (MINT+ABO, no filtering) slowdown vs queue size.
/// The q=1 ALERT storms make these the slowest runs of the suite, so the
/// sweep uses every third workload (8 of 24), which the paper's averages
/// are insensitive to.
pub fn table5(lab: &mut Lab) -> String {
    let subset: Vec<&'static str> = lab.workloads().into_iter().step_by(3).collect();
    let mut out = format!(
        "Table V: Naive MIRZA average slowdown (%) vs MIRZA-Q size\n\
         (averaged over {} workloads: {})\n\
         MINT-W      q=1       q=2       q=4       q=8\n",
        subset.len(),
        subset.join(",")
    );
    for w in [24u32, 48, 96] {
        let mut line = format!("{w:<8}");
        for q in [1usize, 2, 4, 8] {
            let cfg = MitigationConfig::MirzaNaive {
                mint_w: w,
                queue: q,
            };
            let sum: f64 = subset.iter().map(|wl| lab.slowdown(cfg, wl)).sum();
            let _ = write!(line, " {:>8.2}%", sum / subset.len() as f64);
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Figure 6: average ACTs per subarray per tREFW vs the worst case.
pub fn fig6(lab: &mut Lab) -> String {
    let shrink = lab.scale().shrink;
    let worst = lab.scale().worst_case_acts_per_refw();
    let mut out = format!(
        "Figure 6: ACTs per subarray per tREFW (scale 1/{shrink}); \
         worst case = {worst:.0}\n"
    );
    let mut total = 0.0;
    let ws = lab.workloads();
    for w in &ws {
        let r = lab.baseline(w);
        let (mean, _) = r.acts_per_subarray_per_trefw();
        total += mean;
        let _ = writeln!(
            out,
            "{w:<12} {mean:>9.0}   ({:.0}x below worst case)",
            worst / mean.max(1e-9)
        );
    }
    let avg = total / ws.len() as f64;
    let _ = writeln!(
        out,
        "{:<12} {avg:>9.0}   ({:.0}x below worst case)",
        "average",
        worst / avg.max(1e-9)
    );
    out
}

/// Table VI: CGF effectiveness under sequential vs strided R2SA mapping.
pub fn table6(lab: &mut Lab) -> String {
    let shrink = lab.scale().shrink;
    let mut out = format!(
        "Table VI: % of ACTs filtered by CGF (FTH values at paper scale, run at 1/{shrink})\n\
         FTH      sequential filtered   strided filtered\n"
    );
    for fth in [1400u32, 1500, 1600, 1700] {
        let mut cells = Vec::new();
        for mapping in [MappingScheme::Sequential, MappingScheme::Strided] {
            let cfg = MirzaConfig {
                fth,
                mapping,
                ..MirzaConfig::trhd_1000()
            };
            let mitigation = MitigationConfig::Mirza {
                cfg: lab.scale().mirza_config(cfg),
                policy: ResetPolicy::Safe,
            };
            let (mut filtered, mut observed) = (0u64, 0u64);
            for w in lab.workloads() {
                let r = lab.run(mitigation, w);
                filtered += r.mitigation.acts_filtered;
                observed += r.mitigation.acts_observed;
            }
            cells.push(100.0 * filtered as f64 / observed.max(1) as f64);
        }
        let _ = writeln!(out, "{fth:<8} {:>14.2}%   {:>14.2}%", cells[0], cells[1]);
    }
    out
}

/// Figure 11a: per-workload slowdown of MIRZA (three thresholds) and PRAC.
pub fn fig11a(lab: &mut Lab) -> String {
    let configs: Vec<(String, MitigationConfig)> = vec![
        ("mirza-500".into(), lab.mirza(500)),
        ("mirza-1K".into(), lab.mirza(1000)),
        ("mirza-2K".into(), lab.mirza(2000)),
        ("prac".into(), MitigationConfig::PracAbo { trhd: 1000 }),
    ];
    let mut out = String::from(
        "Figure 11a: slowdown (%) vs unprotected baseline\n\
         workload     mirza-500  mirza-1K   mirza-2K   prac\n",
    );
    let ws = lab.workloads();
    let mut sums = vec![0.0f64; configs.len()];
    for w in &ws {
        let mut line = format!("{w:<12}");
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let s = lab.slowdown(*cfg, w);
            sums[i] += s;
            let _ = write!(line, " {s:>9.2}");
        }
        let _ = writeln!(out, "{line}");
    }
    let mut line = format!("{:<12}", "average");
    for s in &sums {
        let _ = write!(line, " {:>9.2}", s / ws.len() as f64);
    }
    let _ = writeln!(out, "{line}");
    out
}

/// Figure 11b: ALERT back-offs per 100 tREFI per sub-channel.
pub fn fig11b(lab: &mut Lab) -> String {
    let configs: Vec<(String, MitigationConfig)> = vec![
        ("mirza-500".into(), lab.mirza(500)),
        ("mirza-1K".into(), lab.mirza(1000)),
        ("mirza-2K".into(), lab.mirza(2000)),
        ("prac".into(), MitigationConfig::PracAbo { trhd: 1000 }),
    ];
    let mut out = String::from(
        "Figure 11b: ALERTs per 100 tREFI\n\
         workload     mirza-500  mirza-1K   mirza-2K   prac\n",
    );
    let ws = lab.workloads();
    let mut sums = vec![0.0f64; configs.len()];
    for w in &ws {
        let mut line = format!("{w:<12}");
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let a = lab.run(*cfg, w).alerts_per_100_trefi();
            sums[i] += a;
            let _ = write!(line, " {a:>9.2}");
        }
        let _ = writeln!(out, "{line}");
    }
    let mut line = format!("{:<12}", "average");
    for s in &sums {
        let _ = write!(line, " {:>9.2}", s / ws.len() as f64);
    }
    let _ = writeln!(out, "{line}");
    out
}

/// Table VIII: mitigation overhead of MINT vs MIRZA.
pub fn table8(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Table VIII: mitigations per ACT\n\
         TRHD    MINT (1/W)     MIRZA measured   reduction\n",
    );
    for (trhd, w) in [(500u32, 24u32), (1000, 48), (2000, 96)] {
        let mirza = lab.mirza(trhd);
        let (mut mit, mut acts) = (0u64, 0u64);
        for wl in lab.workloads() {
            let r = lab.run(mirza, wl);
            mit += r.mitigation.mitigations;
            acts += r.mitigation.acts_observed;
        }
        let mirza_rate = mit as f64 / acts.max(1) as f64;
        let mint_rate = 1.0 / f64::from(w);
        let _ = writeln!(
            out,
            "{trhd:<7} 1/{w:<12} 1/{:<14.0} {:.1}x",
            1.0 / mirza_rate.max(1e-12),
            mint_rate / mirza_rate.max(1e-12)
        );
    }
    out
}

/// Table IX: sensitivity of MIRZA to the (MINT-W, FTH) trade-off at TRHD=1K.
pub fn table9(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Table IX: MIRZA sensitivity at TRHD=1K\n\
         MINT-W   FTH(paper)   slowdown   remaining ACTs\n",
    );
    for w in [4u32, 8, 12, 16] {
        let cfg = lab.mirza_sensitivity(w);
        let slow = lab.avg_slowdown(cfg);
        let (mut cand, mut acts) = (0u64, 0u64);
        for wl in lab.workloads() {
            let r = lab.run(cfg, wl);
            cand += r.mitigation.acts_candidate;
            acts += r.mitigation.acts_observed;
        }
        let fth = MirzaConfig::sensitivity_1000(w).fth;
        let _ = writeln!(
            out,
            "{w:<8} {fth:<12} {slow:>7.2}%   {:>8.2}%",
            100.0 * cand as f64 / acts.max(1) as f64
        );
    }
    out
}

/// Figure 13: refresh power overhead of MINT+RFM vs MIRZA.
pub fn fig13(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Figure 13: refresh power overhead (victim rows / demand rows)\n\
         TRHD    MINT+RFM    MIRZA\n",
    );
    for trhd in [500u32, 1000, 2000] {
        let mint = mint_rfm(trhd);
        let mirza = lab.mirza(trhd);
        let (mut a, mut b) = (0.0, 0.0);
        let ws = lab.workloads();
        for w in &ws {
            a += lab.run(mint, w).refresh_power_overhead_pct();
            b += lab.run(mirza, w).refresh_power_overhead_pct();
        }
        let n = ws.len() as f64;
        let _ = writeln!(out, "{trhd:<7} {:>7.2}%   {:>7.3}%", a / n, b / n);
    }
    out
}

/// Table XIII: average and worst-case (performance-attack) slowdowns.
pub fn table13(lab: &mut Lab) -> String {
    let mut out = String::from(
        "Table XIII: worst-case (attack) and average slowdown\n\
         TRHD    tracker     attack     average\n",
    );
    for trhd in [500u32, 1000, 2000] {
        let (prac_atk, rfm_atk, mirza_atk) = table13_attack_column(trhd);
        let rows = [
            (
                "PRAC+ABO",
                prac_atk,
                lab.avg_slowdown(MitigationConfig::PracAbo { trhd }),
            ),
            ("MINT+RFM", rfm_atk, lab.avg_slowdown(mint_rfm(trhd))),
            ("MIRZA", mirza_atk, lab.avg_slowdown(lab.mirza(trhd))),
        ];
        for (name, atk, avg) in rows {
            let _ = writeln!(out, "{trhd:<7} {name:<11} {atk:>5.2}x   {avg:>7.2}%");
        }
    }
    out
}

/// The (mitigation, workload) cells `name`'s driver will request, for
/// [`Lab::prewarm`]. The drivers stay the single source of truth for
/// output — this list only front-loads their simulations onto the work
/// pool, so an imprecise entry costs compute, never correctness: extra
/// pairs are parked and ignored, missing pairs simply run serially.
pub fn planned_runs(name: &str, lab: &Lab) -> Vec<(MitigationConfig, &'static str)> {
    let ws = lab.workloads();
    let baseline = MitigationConfig::None;
    let mut mitigations: Vec<MitigationConfig> = Vec::new();
    let mut workloads = ws.clone();
    match name {
        "table4" | "fig6" => mitigations.push(baseline),
        "fig3" => {
            mitigations.push(baseline);
            for trhd in [500u32, 1000, 2000] {
                mitigations.push(mint_rfm(trhd));
                mitigations.push(MitigationConfig::PracAbo { trhd });
            }
        }
        "table5" => {
            workloads = ws.into_iter().step_by(3).collect();
            mitigations.push(baseline);
            for mint_w in [24u32, 48, 96] {
                for queue in [1usize, 2, 4, 8] {
                    mitigations.push(MitigationConfig::MirzaNaive { mint_w, queue });
                }
            }
        }
        "table6" => {
            for fth in [1400u32, 1500, 1600, 1700] {
                for mapping in [MappingScheme::Sequential, MappingScheme::Strided] {
                    let cfg = MirzaConfig {
                        fth,
                        mapping,
                        ..MirzaConfig::trhd_1000()
                    };
                    mitigations.push(MitigationConfig::Mirza {
                        cfg: lab.scale().mirza_config(cfg),
                        policy: ResetPolicy::Safe,
                    });
                }
            }
        }
        "fig11a" | "fig11b" => {
            if name == "fig11a" {
                mitigations.push(baseline); // slowdown columns
            }
            for trhd in [500u32, 1000, 2000] {
                mitigations.push(lab.mirza(trhd));
            }
            mitigations.push(MitigationConfig::PracAbo { trhd: 1000 });
        }
        "table8" => {
            for trhd in [500u32, 1000, 2000] {
                mitigations.push(lab.mirza(trhd));
            }
        }
        "table9" => {
            mitigations.push(baseline);
            for mint_w in [4u32, 8, 12, 16] {
                mitigations.push(lab.mirza_sensitivity(mint_w));
            }
        }
        "fig13" => {
            for trhd in [500u32, 1000, 2000] {
                mitigations.push(mint_rfm(trhd));
                mitigations.push(lab.mirza(trhd));
            }
        }
        "table13" => {
            mitigations.push(baseline);
            for trhd in [500u32, 1000, 2000] {
                mitigations.push(MitigationConfig::PracAbo { trhd });
                mitigations.push(mint_rfm(trhd));
                mitigations.push(lab.mirza(trhd));
            }
        }
        // dos-sim and the analytic regenerators drive no lab cells.
        _ => {}
    }
    mitigations
        .into_iter()
        .flat_map(|m| workloads.iter().map(move |&w| (m, w)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn smoke_lab() -> Lab {
        Lab::new(Scale::smoke())
    }

    #[test]
    fn table4_renders_all_workloads() {
        let mut lab = smoke_lab();
        let t = table4(&mut lab);
        for w in lab.workloads() {
            assert!(t.contains(w), "missing {w} in:\n{t}");
        }
        assert!(t.contains("average"));
    }

    #[test]
    fn fig6_reports_headroom_below_worst_case() {
        let mut lab = smoke_lab();
        let t = fig6(&mut lab);
        assert!(t.contains("below worst case"));
    }

    #[test]
    fn table6_strided_filters_more_than_sequential() {
        let mut lab = smoke_lab();
        let t = table6(&mut lab);
        // Parse the FTH=1500 row and compare the two percentages.
        let row = t
            .lines()
            .find(|l| l.starts_with("1500"))
            .expect("1500 row present");
        let nums: Vec<f64> = row
            .split_whitespace()
            .filter_map(|tok| tok.trim_end_matches('%').parse().ok())
            .collect();
        assert!(nums.len() >= 3, "row: {row}");
        let (seq, strided) = (nums[1], nums[2]);
        assert!(
            strided > seq,
            "strided ({strided}) must filter strictly more than sequential ({seq})"
        );
    }

    #[test]
    fn table8_shows_reduction() {
        let mut lab = smoke_lab();
        let t = table8(&mut lab);
        assert!(t.contains("reduction"));
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn table13_has_nine_rows() {
        let mut lab = smoke_lab();
        let t = table13(&mut lab);
        assert_eq!(t.lines().filter(|l| l.contains('x')).count(), 9);
    }

    /// Every driver's actual lab requests must match its prewarm plan
    /// exactly: a missing cell silently serializes part of the sweep, an
    /// extra one burns a worker on a run nobody reads.
    #[test]
    fn planned_runs_exactly_cover_every_drivers_requests() {
        use std::collections::BTreeSet;
        type Driver = fn(&mut Lab) -> String;
        let drivers: [(&str, Driver); 11] = [
            ("table4", table4),
            ("fig3", fig3),
            ("table5", table5),
            ("fig6", fig6),
            ("table6", table6),
            ("fig11a", fig11a),
            ("fig11b", fig11b),
            ("table8", table8),
            ("table9", table9),
            ("fig13", fig13),
            ("table13", table13),
        ];
        for (name, driver) in drivers {
            let mut lab = smoke_lab();
            lab.enable_manifest();
            lab.begin_experiment(name);
            let planned: BTreeSet<String> = planned_runs(name, &lab)
                .into_iter()
                .map(|(m, w)| format!("{}/{w}", m.label()))
                .collect();
            let _ = driver(&mut lab);
            let doc = lab.manifest_json().unwrap();
            let runs = doc.get("experiments").unwrap().as_arr().unwrap()[0]
                .get("runs")
                .unwrap()
                .as_arr()
                .unwrap();
            let actual: BTreeSet<String> = runs
                .iter()
                .map(|r| {
                    format!(
                        "{}/{}",
                        r.get("label").unwrap().as_str().unwrap(),
                        r.get("workload").unwrap().as_str().unwrap()
                    )
                })
                .collect();
            assert_eq!(planned, actual, "prewarm plan for {name} drifted");
        }
    }
}
