//! Build and host provenance stamped into run manifests and
//! `BENCH_*.json`, so every trajectory point is attributable to a source
//! revision, build profile, and machine class.
//!
//! The git revision and cargo profile are baked in at compile time by
//! `build.rs`; the host fingerprint is sampled at run time from the
//! standard library only (no `uname` shell-outs).

use mirza_telemetry::Json;

/// The git revision the binary was built from (short hash, `-dirty`
/// suffix when the work tree had uncommitted changes, `"unknown"` outside
/// a git checkout).
pub fn git_rev() -> &'static str {
    env!("MIRZA_GIT_REV")
}

/// The cargo profile the binary was built with (`"release"`, `"debug"`).
pub fn cargo_profile() -> &'static str {
    env!("MIRZA_BUILD_PROFILE")
}

/// A coarse host fingerprint: OS, architecture, logical CPU count.
/// Deliberately free of hostnames or usernames — enough to tell two
/// machine classes apart in a perf trajectory, nothing identifying.
pub fn host_fingerprint() -> Json {
    let cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut h = Json::obj();
    h.push("os", std::env::consts::OS)
        .push("arch", std::env::consts::ARCH)
        .push("cpus", cpus as u64);
    h
}

/// The full provenance object: `{git_rev, cargo_profile, host}`.
pub fn to_json() -> Json {
    let mut p = Json::obj();
    p.push("git_rev", git_rev())
        .push("cargo_profile", cargo_profile())
        .push("host", host_fingerprint());
    p
}

/// Provenance with the active `--jobs` value stamped into the host object
/// next to `cpus` (manifests only; `BENCH_*.json` keeps the bare
/// fingerprint so perf-gate same-host matching is insensitive to jobs).
pub fn to_json_with_jobs(jobs: usize) -> Json {
    let mut host = host_fingerprint();
    host.push("jobs", jobs as u64);
    let mut p = Json::obj();
    p.push("git_rev", git_rev())
        .push("cargo_profile", cargo_profile())
        .push("host", host);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_fields_are_nonempty() {
        assert!(!git_rev().is_empty());
        assert!(!cargo_profile().is_empty());
        let p = to_json();
        assert!(p.get("git_rev").unwrap().as_str().is_some());
        let host = p.get("host").unwrap();
        assert!(host.get("os").unwrap().as_str().is_some());
        assert!(host.get("cpus").unwrap().as_u64().is_some());
    }

    #[test]
    fn git_rev_is_filename_safe() {
        assert!(git_rev()
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-'));
    }
}
