//! Manifest regression comparison: diff two run manifests produced by
//! `repro --json` and report every divergence in the deterministic
//! sections.
//!
//! Runs are matched by `(experiment, label, workload)`. Within a matched
//! pair the `config` and `report` sections must agree: integers exactly,
//! floats to a relative tolerance that forgives only serialization noise.
//! Host-side sections (`host_profile`) are wall-clock measurements and are
//! deliberately ignored here — `scripts/bench_gate.py` checks those with a
//! ratio tolerance instead.

use mirza_telemetry::Json;

/// Relative tolerance for float comparisons. The simulator is integer-
/// deterministic; floats in reports are derived (IPC, percentages), so any
/// drift beyond round-trip noise is a real regression.
const REL_TOL: f64 = 1e-9;

/// Sections of a run record compared exactly (modulo [`REL_TOL`]).
const COMPARED_SECTIONS: &[&str] = &["config", "report"];

/// Flattens a manifest into `(experiment/label/workload, run)` pairs.
fn index_runs(manifest: &Json) -> Vec<(String, &Json)> {
    let mut out = Vec::new();
    let Some(exps) = manifest.get("experiments").and_then(Json::as_arr) else {
        return out;
    };
    for exp in exps {
        let ename = exp.get("name").and_then(Json::as_str).unwrap_or("?");
        let Some(runs) = exp.get("runs").and_then(Json::as_arr) else {
            continue;
        };
        for run in runs {
            let label = run.get("label").and_then(Json::as_str).unwrap_or("?");
            let workload = run.get("workload").and_then(Json::as_str).unwrap_or("?");
            out.push((format!("{ename}/{label}/{workload}"), run));
        }
    }
    out
}

fn floats_close(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs())
}

/// Recursively diffs two values, appending one line per divergence.
fn diff_value(path: &str, a: &Json, b: &Json, out: &mut Vec<String>) {
    match (a, b) {
        (Json::Obj(pa), Json::Obj(pb)) => {
            for (k, va) in pa {
                match b.get(k) {
                    Some(vb) => diff_value(&format!("{path}.{k}"), va, vb, out),
                    None => out.push(format!("{path}.{k}: missing from current")),
                }
            }
            for (k, _) in pb {
                if a.get(k).is_none() {
                    out.push(format!("{path}.{k}: missing from baseline"));
                }
            }
        }
        (Json::Arr(va), Json::Arr(vb)) => {
            if va.len() != vb.len() {
                out.push(format!("{path}: array length {} != {}", va.len(), vb.len()));
                return;
            }
            for (i, (ea, eb)) in va.iter().zip(vb).enumerate() {
                diff_value(&format!("{path}[{i}]"), ea, eb, out);
            }
        }
        _ => {
            let numeric = a.as_f64().zip(b.as_f64());
            let equal = match numeric {
                // Integer pairs compare exactly; anything float-typed gets
                // the serialization-noise tolerance.
                Some((fa, fb)) => {
                    if matches!(a, Json::F64(_)) || matches!(b, Json::F64(_)) {
                        floats_close(fa, fb)
                    } else {
                        a == b
                    }
                }
                None => a == b,
            };
            if !equal {
                out.push(format!(
                    "{path}: baseline {} != current {}",
                    a.to_string_compact(),
                    b.to_string_compact()
                ));
            }
        }
    }
}

/// Compares two manifests and returns one line per divergence (empty =
/// regression-free). `base` is the committed baseline, `cur` the fresh run.
pub fn compare_manifests(base: &Json, cur: &Json) -> Vec<String> {
    let mut out = Vec::new();
    diff_value(
        "scale",
        base.get("scale").unwrap_or(&Json::Null),
        cur.get("scale").unwrap_or(&Json::Null),
        &mut out,
    );
    diff_value(
        "seed",
        base.get("seed").unwrap_or(&Json::Null),
        cur.get("seed").unwrap_or(&Json::Null),
        &mut out,
    );
    let base_runs = index_runs(base);
    let cur_runs = index_runs(cur);
    for (key, brun) in &base_runs {
        let Some((_, crun)) = cur_runs.iter().find(|(k, _)| k == key) else {
            out.push(format!("{key}: run missing from current manifest"));
            continue;
        };
        for section in COMPARED_SECTIONS {
            match (brun.get(section), crun.get(section)) {
                (Some(a), Some(b)) => diff_value(&format!("{key}.{section}"), a, b, &mut out),
                (None, None) => {}
                (Some(_), None) => out.push(format!("{key}.{section}: missing from current")),
                (None, Some(_)) => out.push(format!("{key}.{section}: missing from baseline")),
            }
        }
    }
    for (key, _) in &cur_runs {
        if !base_runs.iter().any(|(k, _)| k == key) {
            out.push(format!("{key}: run missing from baseline manifest"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(ipc: f64, acts: u64) -> Json {
        Json::parse(&format!(
            r#"{{
              "scale": {{"shrink": 16}},
              "seed": 12648430,
              "experiments": [
                {{"name": "table4", "runs": [
                  {{"label": "baseline", "workload": "lbm",
                    "config": {{"cores": 8, "mitigation": "baseline"}},
                    "report": {{"instructions": 20000, "ipc": {ipc}, "acts": {acts}}},
                    "host_profile": {{"total_secs": 1.0}}}}
                ]}}
              ]
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_manifests_have_no_differences() {
        let a = manifest(1.25, 640);
        assert!(compare_manifests(&a, &a).is_empty());
    }

    #[test]
    fn float_noise_within_tolerance_is_ignored() {
        let a = manifest(1.25, 640);
        let b = manifest(1.25 * (1.0 + 1e-12), 640);
        assert!(compare_manifests(&a, &b).is_empty());
    }

    #[test]
    fn integer_drift_is_exact_match_and_flagged() {
        let a = manifest(1.25, 640);
        let b = manifest(1.25, 641);
        let diffs = compare_manifests(&a, &b);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("report.acts"), "{diffs:?}");
        assert!(diffs[0].contains("640"), "{diffs:?}");
    }

    #[test]
    fn float_drift_beyond_tolerance_is_flagged() {
        let a = manifest(1.25, 640);
        let b = manifest(1.26, 640);
        let diffs = compare_manifests(&a, &b);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("report.ipc"), "{diffs:?}");
    }

    #[test]
    fn host_profile_is_not_compared() {
        let a = manifest(1.25, 640);
        let mut b = manifest(1.25, 640);
        // Rewrite host_profile.total_secs to a wildly different wall time.
        let Json::Obj(pairs) = &mut b else { panic!() };
        let runs = pairs.iter_mut().find(|(k, _)| k == "experiments").unwrap();
        let Json::Arr(exps) = &mut runs.1 else {
            panic!()
        };
        let Json::Obj(exp) = &mut exps[0] else {
            panic!()
        };
        let Json::Arr(rs) = &mut exp.iter_mut().find(|(k, _)| k == "runs").unwrap().1 else {
            panic!()
        };
        let Json::Obj(run) = &mut rs[0] else { panic!() };
        let hp = run.iter_mut().find(|(k, _)| k == "host_profile").unwrap();
        hp.1 = Json::parse(r#"{"total_secs": 99.0}"#).unwrap();
        assert!(compare_manifests(&a, &b).is_empty());
    }

    #[test]
    fn missing_runs_are_reported_both_ways() {
        let a = manifest(1.25, 640);
        let empty =
            Json::parse(r#"{"scale": {"shrink": 16}, "seed": 12648430, "experiments": []}"#)
                .unwrap();
        let diffs = compare_manifests(&a, &empty);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("missing from current"));
        let diffs = compare_manifests(&empty, &a);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("missing from baseline"));
    }

    #[test]
    fn scale_mismatch_is_flagged() {
        let a = manifest(1.25, 640);
        let mut b = manifest(1.25, 640);
        let Json::Obj(pairs) = &mut b else { panic!() };
        pairs.iter_mut().find(|(k, _)| k == "seed").unwrap().1 = Json::U64(7);
        let diffs = compare_manifests(&a, &b);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].starts_with("seed:"), "{diffs:?}");
    }
}
