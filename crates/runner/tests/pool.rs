//! Supervision contract tests: deterministic reduction at any job count,
//! panic isolation, bounded retry, and journal crash tolerance.

use mirza_frontend::error::SimError;
use mirza_runner::{cell_hash, parallel_map, parse_journal, Cell, Pool, JOURNAL_SCHEMA};
use mirza_telemetry::Json;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A pure arithmetic cell: result depends only on construction inputs.
struct ArithCell {
    index: u64,
    seed: u64,
}

impl Cell for ArithCell {
    type Out = u64;
    fn id(&self) -> String {
        format!("arith/{}/{}", self.index, self.seed)
    }
    fn run(&self) -> Result<u64, SimError> {
        // Spread the work so parallel completion order actually scrambles.
        let mut h = self.seed ^ (self.index * 0x9e37_79b9);
        for _ in 0..(self.index % 7) * 1000 {
            h = h
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        Ok(h)
    }
}

#[test]
fn reduction_is_deterministic_across_job_counts() {
    let cells: Vec<ArithCell> = (0..64).map(|i| ArithCell { index: i, seed: 42 }).collect();
    let serial = Pool::with_jobs(1).run(&cells, None);
    assert!(serial.complete());
    for jobs in [2, 8] {
        let parallel = Pool::with_jobs(jobs).run(&cells, None);
        assert!(parallel.complete());
        assert_eq!(
            serial.results, parallel.results,
            "jobs={jobs} must reduce bit-identically to serial"
        );
        assert_eq!(
            parallel.per_worker.iter().sum::<u64>(),
            64,
            "every cell ran exactly once"
        );
    }
}

/// Panics on a chosen index; neighbors must be unaffected.
struct PanicCell {
    index: usize,
    poisoned: bool,
}

impl Cell for PanicCell {
    type Out = usize;
    fn id(&self) -> String {
        format!("panic-test/{}", self.index)
    }
    fn run(&self) -> Result<usize, SimError> {
        if self.poisoned {
            panic!("injected poison in cell {}", self.index);
        }
        Ok(self.index * 10)
    }
}

#[test]
fn injected_panic_surfaces_in_failures_without_poisoning_neighbors() {
    // Silence the default panic hook's backtrace spam for the injected
    // unwinds; restore afterwards.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let cells: Vec<PanicCell> = (0..16)
        .map(|index| PanicCell {
            index,
            poisoned: index == 5,
        })
        .collect();
    for jobs in [1, 4] {
        let outcome = Pool::with_jobs(jobs).run(&cells, None);
        assert_eq!(outcome.failures.len(), 1, "exactly the poisoned cell fails");
        let failure = &outcome.failures[0];
        assert_eq!(failure.index, 5);
        assert_eq!(failure.id, "panic-test/5");
        assert_eq!(
            failure.attempts, 2,
            "a panic is retried once before being recorded"
        );
        match &failure.error {
            SimError::CellPanic { cell, payload } => {
                assert_eq!(cell, "panic-test/5");
                assert!(payload.contains("injected poison"), "{payload}");
            }
            other => panic!("expected CellPanic, got {other:?}"),
        }
        assert_eq!(failure.error.exit_code(), 7);
        for (index, result) in outcome.results.iter().enumerate() {
            if index == 5 {
                assert!(result.is_none());
            } else {
                assert_eq!(*result, Some(index * 10), "neighbor {index} poisoned");
            }
        }
    }
    std::panic::set_hook(prev);
}

/// Fails with a watchdog error on its first attempt, succeeds on retry —
/// the transient-wedge shape the bounded retry exists for.
struct FlakyCell {
    attempts_seen: AtomicU32,
}

impl Cell for FlakyCell {
    type Out = u32;
    fn id(&self) -> String {
        "flaky/0".into()
    }
    fn run(&self) -> Result<u32, SimError> {
        let attempt = self.attempts_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if attempt == 1 {
            Err(SimError::Watchdog {
                reason: "transient wedge".into(),
                instructions: 0,
                sim_time_ps: 0,
            })
        } else {
            Ok(attempt)
        }
    }
}

#[test]
fn transient_watchdog_failure_is_retried_and_recovers() {
    let cells = [FlakyCell {
        attempts_seen: AtomicU32::new(0),
    }];
    let outcome = Pool::with_jobs(4).run(&cells, None);
    assert!(outcome.complete());
    assert_eq!(outcome.retries, 1);
    assert_eq!(outcome.results[0], Some(2), "second attempt's result wins");
}

/// Deterministic input errors must fail fast, not burn the retry budget.
struct ConfigErrCell;

impl Cell for ConfigErrCell {
    type Out = ();
    fn id(&self) -> String {
        "badcfg/0".into()
    }
    fn run(&self) -> Result<(), SimError> {
        Err(SimError::Config {
            key: "k".into(),
            reason: "always invalid".into(),
        })
    }
}

#[test]
fn deterministic_errors_fail_fast_without_retry() {
    let outcome = Pool::with_jobs(2).run(&[ConfigErrCell], None);
    assert_eq!(outcome.retries, 0);
    assert_eq!(outcome.failures.len(), 1);
    assert_eq!(outcome.failures[0].attempts, 1);
}

#[test]
fn on_complete_fires_once_per_success() {
    use std::sync::Mutex;
    let cells: Vec<ArithCell> = (0..20).map(|i| ArithCell { index: i, seed: 7 }).collect();
    let seen: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let outcome = Pool::with_jobs(4).run(
        &cells,
        Some(&|_, id: &str, _: &u64| seen.lock().unwrap().push(id.to_string())),
    );
    assert!(outcome.complete());
    let mut ids = seen.into_inner().unwrap();
    ids.sort();
    let mut expected: Vec<String> = cells.iter().map(|c| c.id()).collect();
    expected.sort();
    assert_eq!(ids, expected);
}

#[test]
fn parallel_map_preserves_item_order() {
    let items: Vec<u64> = (0..100).collect();
    let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
    for jobs in [1, 2, 8] {
        let mapped = parallel_map(&items, jobs, |_, &x| x * x + 1);
        assert_eq!(mapped, serial, "jobs={jobs}");
    }
}

// --- Journal crash tolerance (proptest) ---

fn journal_text(campaign: u64, seeds: &[u64]) -> (String, Vec<String>) {
    let mut header = Json::obj();
    header
        .push("journal", JOURNAL_SCHEMA)
        .push("campaign", format!("{campaign:016x}"));
    let mut text = format!("{}\n", header.to_string_compact());
    let mut ids = Vec::new();
    for &seed in seeds {
        let id = format!("cell-{seed}");
        let mut doc = Json::obj();
        doc.push("cell", format!("{:016x}", cell_hash(&id)))
            .push("id", id.as_str())
            .push("result", Json::U64(seed));
        text.push_str(&doc.to_string_compact());
        text.push('\n');
        ids.push(id);
    }
    (text, ids)
}

proptest! {
    /// Truncating a journal at ANY byte offset yields either a rejected
    /// file (only when the cut lands inside the header) or a clean prefix
    /// of the original records — never a misparsed or invented record.
    #[test]
    fn truncated_journal_is_a_clean_prefix(
        seeds in proptest::collection::vec(0u64..1_000_000, 0..12),
        cut_scale in 0u64..10_000,
    ) {
        let campaign = cell_hash("prop-campaign");
        let (text, ids) = journal_text(campaign, &seeds);
        let cut = (cut_scale as usize * text.len()) / 10_000;
        let truncated = &text[..cut.min(text.len())];
        let header_len = text.find('\n').unwrap() + 1;
        match parse_journal(truncated, campaign) {
            None => prop_assert!(
                cut < header_len,
                "complete header (cut {cut} >= {header_len}) must parse"
            ),
            Some(records) => {
                prop_assert!(records.len() <= ids.len());
                for (record, (id, seed)) in records.iter().zip(ids.iter().zip(seeds.iter())) {
                    prop_assert_eq!(&record.id, id);
                    prop_assert_eq!(record.hash, cell_hash(id));
                    prop_assert_eq!(record.result.as_u64(), Some(*seed));
                }
            }
        }
    }

    /// Corrupting a byte anywhere in the trailing record drops that record
    /// (and only trailing records) — earlier records replay untouched.
    #[test]
    fn corrupt_trailing_record_is_dropped(
        seeds in proptest::collection::vec(0u64..1_000_000, 1..10),
        corrupt_offset in 0u64..10_000,
    ) {
        let campaign = cell_hash("prop-campaign");
        let (text, ids) = journal_text(campaign, &seeds);
        // Find the final record line and smash one of its bytes with an
        // unescaped control byte no JSON string or literal may contain.
        let body = &text[..text.len() - 1]; // drop trailing \n
        let last_line_start = body.rfind('\n').unwrap() + 1;
        let last_len = text.len() - last_line_start - 1;
        let p = last_line_start + (corrupt_offset as usize % last_len.max(1));
        let mut bytes = text.clone().into_bytes();
        bytes[p] = 0x01;
        let corrupted = String::from_utf8(bytes).unwrap();
        let records = parse_journal(&corrupted, campaign).expect("header intact");
        prop_assert_eq!(records.len(), ids.len() - 1, "exactly the smashed record dropped");
        for (record, id) in records.iter().zip(ids.iter()) {
            prop_assert_eq!(&record.id, id);
        }
    }
}
