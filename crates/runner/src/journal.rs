//! Checkpoint journal: crash-safe per-cell completion records.
//!
//! One JSONL file per campaign (`results/<run>.journal.jsonl`). The first
//! line is a header binding the journal to a campaign spec hash; every
//! following line is one completed cell's result, fsync'd at append time so
//! a `kill -9` mid-campaign loses at most the cells that were in flight:
//!
//! ```text
//! {"journal":"mirza-runner-journal-v1","campaign":"1a2b3c4d5e6f7788"}
//! {"cell":"9f86d081884c7d65","id":"mirza-1000/lbm","result":{...}}
//! ```
//!
//! Crash tolerance on load is strictly prefix-shaped: records are replayed
//! in order until the first malformed, truncated, or inconsistent line
//! (including a torn final write with no trailing newline), and everything
//! from that point on is **dropped, never guessed at** — dropped cells are
//! simply re-run. A header that fails to parse or names a different
//! campaign hash invalidates the whole file.

use mirza_telemetry::Json;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal schema tag (header `journal` field).
pub const JOURNAL_SCHEMA: &str = "mirza-runner-journal-v1";

/// Stable 64-bit FNV-1a hash of a cell id — the journal key. Independent of
/// the std hasher (which is allowed to change between releases) so journals
/// survive toolchain upgrades.
pub fn cell_hash(id: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One replayed journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// `cell_hash(id)`, as stored.
    pub hash: u64,
    /// The cell's stable id.
    pub id: String,
    /// The cell's serialized result.
    pub result: Json,
}

/// Parses journal text into the longest valid record prefix.
///
/// Returns `None` when the header is missing, malformed, carries the wrong
/// schema, or names a different campaign. Otherwise returns every leading
/// record that parses *and* is self-consistent (`cell == cell_hash(id)`);
/// the first bad line ends the replay and discards the rest. Pure so the
/// proptest suite can drive it without touching the filesystem.
pub fn parse_journal(text: &str, campaign_hash: u64) -> Option<Vec<JournalRecord>> {
    let mut lines = text.split('\n');
    let header = Json::parse(lines.next()?).ok()?;
    if header.get("journal")?.as_str()? != JOURNAL_SCHEMA {
        return None;
    }
    if u64::from_str_radix(header.get("campaign")?.as_str()?, 16).ok()? != campaign_hash {
        return None;
    }
    let mut records = Vec::new();
    for line in lines {
        if line.is_empty() {
            // Clean EOF ("...}\n" splits into a trailing ""); anything after
            // an interior blank line is unreachable garbage either way.
            break;
        }
        let Some(record) = parse_record(line) else {
            break;
        };
        records.push(record);
    }
    Some(records)
}

fn parse_record(line: &str) -> Option<JournalRecord> {
    let doc = Json::parse(line).ok()?;
    let hash = u64::from_str_radix(doc.get("cell")?.as_str()?, 16).ok()?;
    let id = doc.get("id")?.as_str()?.to_string();
    let result = doc.get("result")?.clone();
    if cell_hash(&id) != hash {
        return None;
    }
    Some(JournalRecord { hash, id, result })
}

/// An open, append-mode journal. `append` is callable from any pool worker:
/// the file handle lives under a mutex and each record is written with one
/// `write_all` + flush + `sync_data`.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Opens the journal for a campaign. With `resume`, an existing file
    /// whose header matches `campaign_hash` is replayed and re-opened in
    /// append mode; its valid record prefix is returned. In every other
    /// case (no file, `resume` false, header/campaign mismatch, torn
    /// header) a fresh journal is created with just the header line.
    pub fn open(
        path: &Path,
        campaign_hash: u64,
        resume: bool,
    ) -> std::io::Result<(Journal, Vec<JournalRecord>)> {
        if resume {
            if let Ok(text) = std::fs::read_to_string(path) {
                if let Some(records) = parse_journal(&text, campaign_hash) {
                    // Rewrite the valid prefix rather than appending after a
                    // possibly-torn trailing line.
                    let mut file = File::create(path)?;
                    let mut doc = header_line(campaign_hash);
                    for r in &records {
                        doc.push_str(&record_line(r.hash, &r.id, &r.result));
                    }
                    file.write_all(doc.as_bytes())?;
                    file.sync_data()?;
                    return Ok((
                        Journal {
                            path: path.to_path_buf(),
                            file: Mutex::new(file),
                        },
                        records,
                    ));
                }
            }
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = File::create(path)?;
        file.write_all(header_line(campaign_hash).as_bytes())?;
        file.sync_data()?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            Vec::new(),
        ))
    }

    /// Appends one completed cell, fsync'd before returning. Errors are
    /// returned (not panicked) so a full disk degrades checkpointing, not
    /// the campaign.
    pub fn append(&self, id: &str, result: &Json) -> std::io::Result<()> {
        let line = record_line(cell_hash(id), id, result);
        let mut file = self.file.lock().expect("journal mutex poisoned");
        file.write_all(line.as_bytes())?;
        file.flush()?;
        file.sync_data()
    }

    /// Journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Deletes the journal after a fully-successful campaign; a journal
    /// left on disk always marks an interrupted or degraded run.
    pub fn finalize(self) -> std::io::Result<()> {
        let path = self.path.clone();
        drop(self);
        std::fs::remove_file(path)
    }
}

fn header_line(campaign_hash: u64) -> String {
    let mut doc = Json::obj();
    doc.push("journal", JOURNAL_SCHEMA)
        .push("campaign", format!("{campaign_hash:016x}"));
    format!("{}\n", doc.to_string_compact())
}

fn record_line(hash: u64, id: &str, result: &Json) -> String {
    let mut doc = Json::obj();
    doc.push("cell", format!("{hash:016x}"))
        .push("id", id)
        .push("result", result.clone());
    format!("{}\n", doc.to_string_compact())
}

/// Reopening with `resume` and appending must round-trip; see also the
/// proptest suite in `tests/pool.rs` for truncation/corruption coverage.
#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "mirza_runner_journal_{}_{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn round_trips_records() {
        let path = tmp("roundtrip");
        let campaign = cell_hash("campaign-spec");
        let (journal, replayed) = Journal::open(&path, campaign, false).unwrap();
        assert!(replayed.is_empty());
        let mut result = Json::obj();
        result.push("successes", 3u64);
        journal.append("a/b/seed1", &result).unwrap();
        journal.append("a/b/seed2", &Json::U64(7)).unwrap();

        let (_journal2, replayed) = Journal::open(&path, campaign, true).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].id, "a/b/seed1");
        assert_eq!(replayed[0].hash, cell_hash("a/b/seed1"));
        assert_eq!(
            replayed[0].result.get("successes").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(replayed[1].result.as_u64(), Some(7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_campaign_hash_invalidates_the_file() {
        let path = tmp("campaign");
        let (journal, _) = Journal::open(&path, 1, false).unwrap();
        journal.append("x", &Json::U64(1)).unwrap();
        let (_j, replayed) = Journal::open(&path, 2, true).unwrap();
        assert!(replayed.is_empty(), "foreign campaign must not replay");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_trailing_record_is_dropped() {
        let campaign = cell_hash("c");
        let mut text = header_line(campaign);
        text.push_str(&record_line(cell_hash("one"), "one", &Json::U64(1)));
        let torn = record_line(cell_hash("two"), "two", &Json::U64(2));
        text.push_str(&torn[..torn.len() / 2]);
        let records = parse_journal(&text, campaign).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, "one");
    }

    #[test]
    fn mismatched_cell_hash_ends_replay() {
        let campaign = cell_hash("c");
        let mut text = header_line(campaign);
        text.push_str(&record_line(cell_hash("one"), "one", &Json::U64(1)));
        // A record whose stored hash disagrees with its id is corruption,
        // not data — replay must stop before it.
        text.push_str(&record_line(0xdead_beef, "two", &Json::U64(2)));
        text.push_str(&record_line(cell_hash("three"), "three", &Json::U64(3)));
        let records = parse_journal(&text, campaign).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn finalize_removes_the_file() {
        let path = tmp("finalize");
        let (journal, _) = Journal::open(&path, 9, false).unwrap();
        journal.append("x", &Json::Null).unwrap();
        journal.finalize().unwrap();
        assert!(!path.exists());
    }
}
