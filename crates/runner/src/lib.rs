//! Supervised parallel sweep engine (ROADMAP item 1).
//!
//! Campaign surfaces — the table4 workload×mitigator grid, the 224-cell
//! attack matrix, the attribution sweep, the Monte-Carlo rig — decompose
//! into independent, seeded, pure cells. This crate runs those cells on
//! hand-rolled scoped `std::thread` workers with the robustness-first
//! contract paper-scale campaigns need:
//!
//! * [`pool`] — the work-pool: [`Cell`] trait, panic isolation via
//!   `catch_unwind`, bounded retry, nondeterministic completion with
//!   **deterministic reduction** (merge by canonical enumeration index), so
//!   parallel output is bit-identical to serial at any `--jobs` count.
//! * [`journal`] — the checkpoint journal: one fsync'd JSONL record per
//!   completed cell keyed by a stable FNV-1a cell-id hash, so
//!   `--resume` replays finished cells and schedules only the remainder
//!   after a crash or `kill -9`.
//!
//! Dependency-free by design (std + the in-tree `mirza-frontend` error type
//! and `mirza-telemetry` JSON/metrics), like every other crate in the
//! workspace.

pub mod journal;
pub mod pool;

pub use journal::{cell_hash, parse_journal, Journal, JournalRecord, JOURNAL_SCHEMA};
pub use pool::{
    default_jobs, parallel_map, scale_wall_budget, Cell, CellFailure, OnComplete, Outcome, Pool,
};
