//! The supervised work-pool.
//!
//! Hand-rolled scoped `std::thread` workers draining a shared queue of
//! [`Cell`]s. Three supervision guarantees distinguish this from a naive
//! `chunks().map(spawn)`:
//!
//! * **Panic isolation** — every cell runs under
//!   `catch_unwind(AssertUnwindSafe(..))`. A poisoned cell yields a typed
//!   [`SimError::CellPanic`] failure record; its worker thread and every
//!   neighboring cell keep running.
//! * **Bounded retry** — failures classified transient (watchdog aborts,
//!   panics, I/O races such as fd exhaustion under parallel trace loads) are
//!   re-queued once with the same seed and payload, up to
//!   [`Pool::max_attempts`] total attempts on a fresh worker slot.
//!   Deterministic input errors (config, trace parse, unknown workload)
//!   fail fast on the first attempt.
//! * **Deterministic reduction** — workers complete in nondeterministic
//!   order but every result lands in `Outcome::results[index]` keyed by the
//!   cell's canonical enumeration index, so callers that serialize the
//!   outcome in index order produce byte-identical artifacts at any job
//!   count, including `jobs = 1`.
//!
//! Timeout semantics are cooperative: the pool cannot preempt a wedged
//! thread, so per-cell budgets are enforced *inside* the cell by the
//! simulator's own watchdog (simulated-time idle budget, unscaled, plus the
//! wall-clock budget scaled by [`scale_wall_budget`]) which returns
//! [`SimError::Watchdog`] — which the pool then treats as retryable.

use mirza_frontend::error::SimError;
use mirza_telemetry::names::{
    EV_CELL_FAILED, RUNNER_CELLS_COMPLETED, RUNNER_CELLS_FAILED, RUNNER_CELLS_RESUMED,
    RUNNER_CELLS_RETRIED, RUNNER_CELL_WALL_US, RUNNER_WORKERS, RUNNER_WORKER_CELLS,
};
use mirza_telemetry::{Json, Telemetry};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One independent, re-runnable unit of a campaign.
///
/// Implementations must be **pure functions of their construction inputs**
/// (typically a seed plus a config): `run` may be invoked again on a retry
/// or on a different worker and must produce the identical result. Interior
/// mutability is fine for instrumentation but must not leak into `Out`.
pub trait Cell: Sync {
    /// The serializable result a completed cell produces. `Send` because it
    /// crosses from the worker thread back to the reducer.
    type Out: Send;

    /// Stable, human-readable identity (also the journal key via
    /// [`crate::journal::cell_hash`]). Two cells with equal ids must be
    /// interchangeable.
    fn id(&self) -> String;

    /// Executes the cell. Panics are caught by the pool; typed errors flow
    /// through as-is.
    fn run(&self) -> Result<Self::Out, SimError>;
}

/// References are cells too, so resumable campaigns can pool the not-yet-
/// completed subset of an owned task list without cloning the tasks.
impl<C: Cell> Cell for &C {
    type Out = C::Out;

    fn id(&self) -> String {
        (**self).id()
    }

    fn run(&self) -> Result<Self::Out, SimError> {
        (**self).run()
    }
}

/// A cell that exhausted its attempts (or failed deterministically).
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Canonical enumeration index of the cell.
    pub index: usize,
    /// Stable cell id.
    pub id: String,
    /// Attempts consumed (1 = failed fast, `max_attempts` = retries too).
    pub attempts: u32,
    /// The final attempt's error.
    pub error: SimError,
}

/// What a supervised campaign produced.
#[derive(Debug)]
pub struct Outcome<T> {
    /// Per-cell results in canonical enumeration order; `None` exactly for
    /// the indices listed in `failures`.
    pub results: Vec<Option<T>>,
    /// Cells that failed after supervision, sorted by index.
    pub failures: Vec<CellFailure>,
    /// Total retry attempts scheduled (beyond first attempts).
    pub retries: u64,
    /// Cells executed per worker slot (length = worker count actually
    /// spawned; `[0]` is the caller thread when `jobs <= 1`).
    pub per_worker: Vec<u64>,
    /// Wall-clock duration of the whole pool run.
    pub wall: Duration,
    /// Sum of per-cell wall micros (reducer-side, for the histogram).
    cell_wall_us: Vec<(usize, u64)>,
}

impl<T> Outcome<T> {
    /// True when every cell completed.
    pub fn complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Records pool counters and one `cell_failed` event per failure into
    /// `telemetry` (reducer-side: the pool itself never touches the
    /// non-`Send` telemetry handle from worker threads).
    pub fn record(&self, telemetry: &Telemetry, resumed: u64) {
        telemetry.set_counter(RUNNER_WORKERS, self.per_worker.len() as u64);
        telemetry.inc(
            RUNNER_CELLS_COMPLETED,
            (self.results.len() - self.failures.len()) as u64,
        );
        telemetry.inc(RUNNER_CELLS_RETRIED, self.retries);
        telemetry.inc(RUNNER_CELLS_FAILED, self.failures.len() as u64);
        telemetry.inc(RUNNER_CELLS_RESUMED, resumed);
        for (worker, &cells) in self.per_worker.iter().enumerate() {
            if worker < RUNNER_WORKER_CELLS.len() {
                telemetry.inc(RUNNER_WORKER_CELLS[worker], cells);
            }
        }
        for &(_, us) in &self.cell_wall_us {
            telemetry.observe(RUNNER_CELL_WALL_US, us);
        }
        for f in &self.failures {
            telemetry.event(
                0,
                EV_CELL_FAILED,
                &[
                    ("cell", Json::Str(f.id.clone())),
                    ("attempts", Json::U64(u64::from(f.attempts))),
                    ("error", Json::Str(f.error.to_string())),
                ],
            );
        }
    }
}

/// Supervision policy for one campaign.
#[derive(Debug, Clone)]
pub struct Pool {
    /// Worker threads; `<= 1` runs every cell inline on the caller thread
    /// (the serial path — same supervision, no spawns).
    pub jobs: usize,
    /// Total attempts per cell (first run + retries). The issue contract is
    /// 2: one fresh-worker retry for transient failures.
    pub max_attempts: u32,
}

impl Default for Pool {
    fn default() -> Self {
        Pool {
            jobs: 1,
            max_attempts: 2,
        }
    }
}

/// Completion hook type: `(index, id, out)` per successful cell. Fires
/// from whichever worker finished the cell, so implementations must be
/// internally synchronized (the journal's file mutex) and cheap.
pub type OnComplete<'a, O> = &'a (dyn Fn(usize, &str, &O) + Sync);

impl Pool {
    /// A pool with `jobs` workers and the default retry budget.
    pub fn with_jobs(jobs: usize) -> Self {
        Pool {
            jobs: jobs.max(1),
            ..Pool::default()
        }
    }

    /// Runs every cell, supervising panics/timeouts, and reduces results
    /// into canonical order. `on_complete` fires once per successful cell
    /// (see [`OnComplete`]) — callers use it for journal appends.
    pub fn run<C: Cell>(
        &self,
        cells: &[C],
        on_complete: Option<OnComplete<'_, C::Out>>,
    ) -> Outcome<C::Out> {
        let start = Instant::now();
        let n = cells.len();
        let queue: Mutex<VecDeque<Task>> = Mutex::new(
            (0..n)
                .map(|i| Task {
                    index: i,
                    attempt: 1,
                })
                .collect(),
        );
        // Cells not yet finally resolved (success or exhausted retries).
        // Retries keep the count, so workers spin-wait on a nonzero value
        // instead of exiting while a neighbor might still re-queue work.
        let pending = AtomicUsize::new(n);
        let results: Mutex<Vec<Option<C::Out>>> = Mutex::new((0..n).map(|_| None).collect());
        let failures: Mutex<Vec<CellFailure>> = Mutex::new(Vec::new());
        let retries = AtomicU64::new(0);
        let cell_wall: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::with_capacity(n));

        let worker = |_slot: usize| -> u64 {
            let mut done: u64 = 0;
            loop {
                let task = queue.lock().expect("pool queue poisoned").pop_front();
                let Some(task) = task else {
                    if pending.load(Ordering::Acquire) == 0 {
                        return done;
                    }
                    // Queue momentarily empty but another worker may still
                    // re-queue a retry; yield and re-check.
                    std::thread::yield_now();
                    continue;
                };
                let cell = &cells[task.index];
                let t0 = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| cell.run()));
                let us = t0.elapsed().as_micros() as u64;
                done += 1;
                match outcome {
                    Ok(Ok(out)) => {
                        if let Some(hook) = on_complete {
                            hook(task.index, &cell.id(), &out);
                        }
                        cell_wall
                            .lock()
                            .expect("wall poisoned")
                            .push((task.index, us));
                        results.lock().expect("results poisoned")[task.index] = Some(out);
                        pending.fetch_sub(1, Ordering::AcqRel);
                    }
                    other => {
                        let error = match other {
                            Ok(Err(e)) => e,
                            Err(payload) => SimError::CellPanic {
                                cell: cell.id(),
                                payload: panic_message(payload.as_ref()),
                            },
                            Ok(Ok(_)) => unreachable!("handled above"),
                        };
                        if retryable(&error) && task.attempt < self.max_attempts {
                            retries.fetch_add(1, Ordering::Relaxed);
                            queue.lock().expect("pool queue poisoned").push_back(Task {
                                index: task.index,
                                attempt: task.attempt + 1,
                            });
                        } else {
                            failures
                                .lock()
                                .expect("failures poisoned")
                                .push(CellFailure {
                                    index: task.index,
                                    id: cell.id(),
                                    attempts: task.attempt,
                                    error,
                                });
                            pending.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                }
            }
        };

        let per_worker: Vec<u64> = if self.jobs <= 1 || n <= 1 {
            vec![worker(0)]
        } else {
            let slots = self.jobs.min(n);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..slots)
                    .map(|slot| {
                        std::thread::Builder::new()
                            .name(format!("mirza-worker-{slot}"))
                            .spawn_scoped(scope, move || worker(slot))
                            .expect("spawn pool worker")
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pool worker slot itself panicked"))
                    .collect()
            })
        };

        let mut failures = failures.into_inner().expect("failures poisoned");
        failures.sort_by_key(|f| f.index);
        let mut cell_wall_us = cell_wall.into_inner().expect("wall poisoned");
        cell_wall_us.sort_unstable();
        Outcome {
            results: results.into_inner().expect("results poisoned"),
            failures,
            retries: retries.into_inner(),
            per_worker,
            wall: start.elapsed(),
            cell_wall_us,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Task {
    index: usize,
    attempt: u32,
}

/// Transient failures worth one fresh-worker retry: a wedged run (watchdog),
/// a panic (possibly a thread-environment artifact), or an I/O race (fd
/// exhaustion, transient FS errors under parallel trace loads).
/// Deterministic input errors re-fail identically, so they don't retry.
fn retryable(error: &SimError) -> bool {
    matches!(
        error,
        SimError::Watchdog { .. } | SimError::CellPanic { .. } | SimError::Io { .. }
    )
}

/// Extracts the conventional `&str`/`String` panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// `available_parallelism`, defaulting to 1 where the host won't say.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The wall-clock watchdog budget for one cell when `jobs` cells share the
/// machine: scaled linearly so an oversubscribed run (more workers than
/// cores, CI timeshare) doesn't trip spurious exit-6 aborts. The
/// simulated-time idle budget is intentionally *not* scaled — simulated
/// progress per cell is independent of co-runners.
pub fn scale_wall_budget(base: Duration, jobs: usize) -> Duration {
    base * jobs.max(1) as u32
}

/// Order-preserving parallel map over `items` with panic propagation: the
/// closure runs on pool workers, results return in item order regardless of
/// completion order. A panicking closure call is re-raised on the caller
/// thread (single attempt — a pure map has nothing to retry).
pub fn parallel_map<I, T, F>(items: &[I], jobs: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    struct MapCell<'a, I, F> {
        index: usize,
        item: &'a I,
        f: &'a F,
    }
    impl<I, T, F> Cell for MapCell<'_, I, F>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        type Out = T;
        fn id(&self) -> String {
            format!("map[{}]", self.index)
        }
        fn run(&self) -> Result<T, SimError> {
            Ok((self.f)(self.index, self.item))
        }
    }

    let cells: Vec<MapCell<'_, I, F>> = items
        .iter()
        .enumerate()
        .map(|(index, item)| MapCell { index, item, f: &f })
        .collect();
    let pool = Pool {
        jobs,
        max_attempts: 1,
    };
    let outcome = pool.run(&cells, None);
    if let Some(first) = outcome.failures.first() {
        panic!("parallel_map cell {} failed: {}", first.id, first.error);
    }
    outcome
        .results
        .into_iter()
        .map(|r| r.expect("no failures"))
        .collect()
}
