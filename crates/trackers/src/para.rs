//! PARA: probabilistic adjacent-row activation (Kim et al., ISCA 2014).
//! Stateless: on every ACT, with probability `p`, the neighbors of the
//! activated row are refreshed immediately. Included as a classic
//! stateless baseline for the extension studies (it trades SRAM for a
//! large energy overhead at low thresholds).

use mirza_dram::address::{MappingScheme, RowMapping};
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::{MitigationLog, MitigationStats, Mitigator, RefreshSlice};
use mirza_dram::time::Ps;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Stateless probabilistic mitigation.
#[derive(Debug)]
pub struct Para {
    p: f64,
    mapping: RowMapping,
    rng: SmallRng,
    stats: MitigationStats,
    log: MitigationLog,
}

impl Para {
    /// Creates PARA with per-ACT mitigation probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 < p <= 1.0`.
    pub fn new(p: f64, geom: &Geometry, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "probability must be in (0, 1]");
        Para {
            p,
            mapping: RowMapping::for_geometry(MappingScheme::Sequential, geom),
            rng: SmallRng::seed_from_u64(seed),
            stats: MitigationStats::default(),
            log: MitigationLog::new(),
        }
    }

    /// Probability for a target threshold: the standard sizing
    /// `p = 23 / TRH` keeps the failure probability below ~1e-10 per row
    /// per refresh window (ln(1e-10) ~ -23).
    pub fn for_trh(trh: u32, geom: &Geometry, seed: u64) -> Self {
        Self::new((23.0 / f64::from(trh)).min(1.0), geom, seed)
    }

    /// The configured mitigation probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl Mitigator for Para {
    fn name(&self) -> &'static str {
        "para"
    }

    fn on_activate(&mut self, _bank: usize, row: u32, _now: Ps) {
        self.stats.acts_observed += 1;
        self.stats.acts_candidate += 1;
        if self.rng.gen_bool(self.p) {
            self.stats.mitigations += 1;
            self.stats.victim_rows_refreshed += self.mapping.neighbors(row, 2).len() as u64;
            self.log.push(_bank, row);
        }
    }

    fn on_ref(&mut self, _slice: &RefreshSlice, _now: Ps) {}

    fn on_rfm(&mut self, _alert: bool, _now: Ps) {}

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn mapping(&self) -> Option<&RowMapping> {
        Some(&self.mapping)
    }

    fn drain_mitigations(&mut self) -> Vec<(usize, u32)> {
        self.log.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry {
            subchannels: 1,
            ranks: 1,
            banks: 1,
            rows_per_bank: 4096,
            row_bytes: 4096,
            line_bytes: 64,
            subarrays_per_bank: 4,
            rows_per_ref: 16,
        }
    }

    #[test]
    fn mitigation_rate_tracks_probability() {
        let mut p = Para::new(0.1, &geom(), 7);
        for i in 0..100_000u32 {
            p.on_activate(0, i % 1000, Ps::ZERO);
        }
        let rate = p.stats().mitigation_rate();
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn sizing_formula() {
        let p = Para::for_trh(1000, &geom(), 0);
        assert!((p.probability() - 0.023).abs() < 1e-12);
        let p = Para::for_trh(10, &geom(), 0);
        assert_eq!(p.probability(), 1.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_zero_probability() {
        let _ = Para::new(0.0, &geom(), 0);
    }
}
