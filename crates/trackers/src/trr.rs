//! Targeted Row Refresh (TRR): the DDR4-era in-DRAM tracker (Section X,
//! Table XII). A small (4-28 entry) counter table mitigating one aggressor
//! every few REFs.
//!
//! Reverse-engineered TRRs (TRRespass, Blacksmith) are *not* sound
//! frequent-item summaries: on a miss with a full table they recycle the
//! oldest entry and restart its count at one, losing the evicted row's
//! history. That is exactly what many-sided/decoy patterns exploit — they
//! keep flushing the real aggressors out of the table — and the security
//! harness demonstrates the break.

use mirza_dram::address::{MappingScheme, RowMapping};
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::{MitigationLog, MitigationStats, Mitigator, RefreshSlice};
use mirza_dram::time::Ps;

#[derive(Debug, Clone, Copy)]
struct TrrEntry {
    row: u32,
    count: u32,
}

/// FIFO-recycling tracker table (no count adoption on eviction).
#[derive(Debug, Clone)]
struct TrrTable {
    entries: Vec<TrrEntry>,
    capacity: usize,
    fifo: usize,
}

impl TrrTable {
    fn new(capacity: usize) -> Self {
        TrrTable {
            entries: Vec::with_capacity(capacity),
            capacity,
            fifo: 0,
        }
    }

    fn observe(&mut self, row: u32) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.row == row) {
            e.count += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(TrrEntry { row, count: 1 });
            return;
        }
        // History of the recycled entry is lost — the TRR weakness.
        self.entries[self.fifo] = TrrEntry { row, count: 1 };
        self.fifo = (self.fifo + 1) % self.capacity;
    }

    fn pop_max(&mut self) -> Option<TrrEntry> {
        let (i, _) = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.count)?;
        if i < self.fifo {
            self.fifo -= 1;
        }
        Some(self.entries.swap_remove(i))
    }

    fn count(&self, row: u32) -> u32 {
        self.entries
            .iter()
            .find(|e| e.row == row)
            .map_or(0, |e| e.count)
    }
}

/// Reverse-engineered-style TRR: tiny per-bank FIFO-recycled table.
#[derive(Debug)]
pub struct Trr {
    entries_per_bank: usize,
    refs_per_mitigation: u64,
    mapping: RowMapping,
    tables: Vec<TrrTable>,
    refs_seen: u64,
    stats: MitigationStats,
    log: MitigationLog,
}

impl Trr {
    /// Creates TRR with `entries_per_bank` tracker entries and one
    /// mitigation per `refs_per_mitigation` REFs (the paper configures 28
    /// entries, one mitigation per 4 REF).
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(entries_per_bank: usize, refs_per_mitigation: u64, geom: &Geometry) -> Self {
        assert!(entries_per_bank > 0, "need at least one entry");
        assert!(refs_per_mitigation > 0, "mitigation rate must be non-zero");
        let banks = geom.banks_per_subchannel() as usize;
        Trr {
            entries_per_bank,
            refs_per_mitigation,
            mapping: RowMapping::for_geometry(MappingScheme::Sequential, geom),
            tables: (0..banks)
                .map(|_| TrrTable::new(entries_per_bank))
                .collect(),
            refs_seen: 0,
            stats: MitigationStats::default(),
            log: MitigationLog::new(),
        }
    }

    /// The paper's Table XII configuration: 28 entries, 1 per 4 REF.
    pub fn ddr4_like(geom: &Geometry) -> Self {
        Self::new(28, 4, geom)
    }

    /// SRAM bytes per bank: 3 bytes per entry (row-id + counter), Table XII.
    pub fn sram_bytes_per_bank(&self) -> u32 {
        self.entries_per_bank as u32 * 3
    }

    /// Tracked count of `row` in `bank` (zero when untracked).
    pub fn tracked_count(&self, bank: usize, row: u32) -> u32 {
        self.tables[bank].count(row)
    }
}

impl Mitigator for Trr {
    fn name(&self) -> &'static str {
        "trr"
    }

    fn on_activate(&mut self, bank: usize, row: u32, _now: Ps) {
        self.stats.acts_observed += 1;
        self.stats.acts_candidate += 1;
        self.tables[bank].observe(row);
    }

    fn on_ref(&mut self, _slice: &RefreshSlice, _now: Ps) {
        self.refs_seen += 1;
        if !self.refs_seen.is_multiple_of(self.refs_per_mitigation) {
            return;
        }
        for bank in 0..self.tables.len() {
            if let Some(top) = self.tables[bank].pop_max() {
                self.stats.mitigations += 1;
                self.stats.ref_mitigations += 1;
                self.stats.victim_rows_refreshed += self.mapping.neighbors(top.row, 2).len() as u64;
                self.log.push(bank, top.row);
            }
        }
    }

    fn on_rfm(&mut self, _alert: bool, _now: Ps) {}

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn mapping(&self) -> Option<&RowMapping> {
        Some(&self.mapping)
    }

    fn drain_mitigations(&mut self) -> Vec<(usize, u32)> {
        self.log.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry {
            subchannels: 1,
            ranks: 1,
            banks: 1,
            rows_per_bank: 4096,
            row_bytes: 4096,
            line_bytes: 64,
            subarrays_per_bank: 4,
            rows_per_ref: 16,
        }
    }

    #[test]
    fn table12_storage() {
        let t = Trr::ddr4_like(&geom());
        assert_eq!(t.sram_bytes_per_bank(), 84);
    }

    #[test]
    fn catches_simple_double_sided_pattern() {
        let mut t = Trr::ddr4_like(&geom());
        for i in 0..1000u64 {
            t.on_activate(0, 100, Ps::ZERO);
            t.on_activate(0, 102, Ps::ZERO);
            if i % 20 == 19 {
                t.on_ref(
                    &RefreshSlice {
                        index: i,
                        phys_rows: 0..16,
                    },
                    Ps::ZERO,
                );
            }
        }
        assert!(t.stats().mitigations > 0, "naive pattern gets mitigated");
    }

    #[test]
    fn eviction_forgets_history() {
        let mut t = Trr::new(2, 4, &geom());
        for _ in 0..100 {
            t.on_activate(0, 7, Ps::ZERO);
        }
        assert_eq!(t.tracked_count(0, 7), 100);
        // Two fresh rows flush the table; row 7's history is gone.
        t.on_activate(0, 8, Ps::ZERO);
        t.on_activate(0, 9, Ps::ZERO);
        assert_eq!(t.tracked_count(0, 7), 0);
        t.on_activate(0, 7, Ps::ZERO);
        assert_eq!(t.tracked_count(0, 7), 1, "count restarts after eviction");
    }
}
