//! MINT with proactive mitigation under REF (Table II / Table XII):
//! one sampled aggressor per bank is mitigated every `k` REF commands,
//! cannibalizing part of the refresh budget.

use mirza_dram::address::{MappingScheme, RowMapping};
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::{MitigationLog, MitigationStats, Mitigator, RefreshSlice};
use mirza_dram::time::Ps;

use crate::reservoir::Reservoir;

/// Time to mitigate one aggressor (bounded refresh of its victims), used to
/// express refresh cannibalization: 280 ns out of a 410 ns REF.
pub const MITIGATION_NS: u64 = 280;

/// REF execution time, for the cannibalization ratio.
pub const REF_NS: u64 = 410;

/// MINT sampling with mitigation every `k` REFs.
#[derive(Debug)]
pub struct MintRef {
    refs_per_mitigation: u64,
    mapping: RowMapping,
    reservoirs: Vec<Reservoir>,
    refs_seen: u64,
    stats: MitigationStats,
    log: MitigationLog,
}

impl MintRef {
    /// Creates the tracker mitigating one aggressor per bank every
    /// `refs_per_mitigation` REF commands.
    ///
    /// # Panics
    /// Panics if `refs_per_mitigation` is zero.
    pub fn new(refs_per_mitigation: u64, geom: &Geometry, seed: u64) -> Self {
        assert!(refs_per_mitigation > 0, "mitigation rate must be non-zero");
        let banks = geom.banks_per_subchannel() as usize;
        MintRef {
            refs_per_mitigation,
            mapping: RowMapping::for_geometry(MappingScheme::Sequential, geom),
            reservoirs: (0..banks)
                .map(|b| Reservoir::new(seed.wrapping_add(b as u64)))
                .collect(),
            refs_seen: 0,
            stats: MitigationStats::default(),
            log: MitigationLog::new(),
        }
    }

    /// Fraction of the refresh budget consumed by mitigation (Table II):
    /// `280ns / (410ns * k)`.
    pub fn refresh_cannibalization(&self) -> f64 {
        MITIGATION_NS as f64 / (REF_NS as f64 * self.refs_per_mitigation as f64)
    }
}

impl Mitigator for MintRef {
    fn name(&self) -> &'static str {
        "mint-ref"
    }

    fn on_activate(&mut self, bank: usize, row: u32, _now: Ps) {
        self.stats.acts_observed += 1;
        self.stats.acts_candidate += 1;
        self.reservoirs[bank].observe(row);
    }

    fn on_ref(&mut self, _slice: &RefreshSlice, _now: Ps) {
        self.refs_seen += 1;
        if !self.refs_seen.is_multiple_of(self.refs_per_mitigation) {
            return;
        }
        for bank in 0..self.reservoirs.len() {
            if let Some(row) = self.reservoirs[bank].take() {
                self.stats.mitigations += 1;
                self.stats.ref_mitigations += 1;
                self.stats.victim_rows_refreshed += self.mapping.neighbors(row, 2).len() as u64;
                self.log.push(bank, row);
            }
        }
    }

    fn on_rfm(&mut self, _alert: bool, _now: Ps) {}

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn mapping(&self) -> Option<&RowMapping> {
        Some(&self.mapping)
    }

    fn drain_mitigations(&mut self) -> Vec<(usize, u32)> {
        self.log.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry {
            subchannels: 1,
            ranks: 1,
            banks: 1,
            rows_per_bank: 4096,
            row_bytes: 4096,
            line_bytes: 64,
            subarrays_per_bank: 4,
            rows_per_ref: 16,
        }
    }

    fn slice(i: u64) -> RefreshSlice {
        RefreshSlice {
            index: i,
            phys_rows: 0..16,
        }
    }

    #[test]
    fn mitigates_every_kth_ref() {
        let mut m = MintRef::new(4, &geom(), 1);
        for ref_i in 0..16u64 {
            m.on_activate(0, ref_i as u32, Ps::ZERO);
            m.on_ref(&slice(ref_i), Ps::ZERO);
        }
        let s = m.stats();
        assert_eq!(s.mitigations, 4);
        assert_eq!(s.ref_mitigations, 4);
    }

    #[test]
    fn cannibalization_matches_table2() {
        // 1 per REF -> 280/410 = 68%; 1 per 2 REF -> 34%; 1 per 8 -> 8.5%.
        assert!((MintRef::new(1, &geom(), 0).refresh_cannibalization() - 0.683).abs() < 0.01);
        assert!((MintRef::new(2, &geom(), 0).refresh_cannibalization() - 0.341).abs() < 0.01);
        assert!((MintRef::new(8, &geom(), 0).refresh_cannibalization() - 0.085).abs() < 0.01);
    }

    #[test]
    fn no_sample_no_mitigation() {
        let mut m = MintRef::new(1, &geom(), 2);
        m.on_ref(&slice(0), Ps::ZERO);
        assert_eq!(m.stats().mitigations, 0);
    }
}
