//! Uniform reservoir sampling over a variable-length activation window.
//!
//! Proactive randomized trackers (MINT used with RFM or REF mitigation)
//! must pick one activation uniformly from however many ACTs arrive between
//! two mitigation opportunities. Reservoir sampling gives exact uniformity
//! for any window length with O(1) state — the in-DRAM equivalent of MINT's
//! pre-picked index when the window size is not known in advance.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Single-entry uniform reservoir.
#[derive(Debug, Clone)]
pub struct Reservoir {
    selected: Option<u32>,
    seen: u64,
    rng: SmallRng,
}

impl Reservoir {
    /// Creates an empty reservoir seeded deterministically.
    pub fn new(seed: u64) -> Self {
        Reservoir {
            selected: None,
            seen: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Observes one activation of `row`.
    pub fn observe(&mut self, row: u32) {
        self.seen += 1;
        if self.rng.gen_range(0..self.seen) == 0 {
            self.selected = Some(row);
        }
    }

    /// Activations observed since the last [`take`](Self::take).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current selection without resetting.
    pub fn peek(&self) -> Option<u32> {
        self.selected
    }

    /// Takes the selection and starts a fresh window.
    pub fn take(&mut self) -> Option<u32> {
        self.seen = 0;
        self.selected.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn empty_reservoir_yields_none() {
        let mut r = Reservoir::new(0);
        assert_eq!(r.take(), None);
        assert_eq!(r.peek(), None);
        assert_eq!(r.seen(), 0);
    }

    #[test]
    fn take_resets_window() {
        let mut r = Reservoir::new(1);
        r.observe(5);
        assert_eq!(r.seen(), 1);
        assert_eq!(r.take(), Some(5));
        assert_eq!(r.seen(), 0);
        assert_eq!(r.take(), None);
    }

    #[test]
    fn single_observation_always_selected() {
        for seed in 0..20 {
            let mut r = Reservoir::new(seed);
            r.observe(7);
            assert_eq!(r.take(), Some(7));
        }
    }

    #[test]
    fn selection_is_uniform() {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        let mut r = Reservoir::new(99);
        let w = 8u32;
        let trials = 40_000;
        for _ in 0..trials {
            for row in 0..w {
                r.observe(row);
            }
            *counts.entry(r.take().unwrap()).or_default() += 1;
        }
        let expect = trials as f64 / w as f64;
        for row in 0..w {
            let c = f64::from(*counts.get(&row).unwrap_or(&0));
            assert!(
                (c - expect).abs() < expect * 0.1,
                "row {row}: {c} vs ~{expect}"
            );
        }
    }
}
