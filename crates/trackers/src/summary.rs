//! Space-Saving frequent-item summary: the counter-table core shared by
//! Mithril-style and TRR-style trackers.
//!
//! Maintains at most `k` (row, count) pairs. A hit increments the row's
//! count; a miss on a full table evicts the minimum-count entry and adopts
//! its count plus one (the classic Space-Saving over-estimate, which is what
//! gives Misra-Gries-style trackers their security bound).

/// One tracked row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryEntry {
    /// Tracked row address.
    pub row: u32,
    /// Estimated activation count (never an under-estimate).
    pub count: u32,
}

/// Bounded counter table.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    k: usize,
    entries: Vec<SummaryEntry>,
}

impl SpaceSaving {
    /// Creates an empty table of capacity `k`.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "summary capacity must be non-zero");
        SpaceSaving {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Entries currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated count for `row`, zero if untracked.
    pub fn count(&self, row: u32) -> u32 {
        self.entries
            .iter()
            .find(|e| e.row == row)
            .map_or(0, |e| e.count)
    }

    /// Iterates over tracked entries (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &SummaryEntry> {
        self.entries.iter()
    }

    /// Records one activation of `row`.
    pub fn observe(&mut self, row: u32) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.row == row) {
            e.count += 1;
            return;
        }
        if self.entries.len() < self.k {
            self.entries.push(SummaryEntry { row, count: 1 });
            return;
        }
        let min = self
            .entries
            .iter_mut()
            .min_by_key(|e| e.count)
            .expect("table is full, hence non-empty");
        min.row = row;
        min.count += 1;
    }

    /// Removes and returns the maximum-count entry (the mitigation target).
    pub fn pop_max(&mut self) -> Option<SummaryEntry> {
        let (i, _) = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.count)?;
        Some(self.entries.swap_remove(i))
    }

    /// The maximum count currently tracked (zero when empty).
    pub fn max_count(&self) -> u32 {
        self.entries.iter().map(|e| e.count).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_increment() {
        let mut s = SpaceSaving::new(2);
        s.observe(1);
        s.observe(1);
        s.observe(1);
        assert_eq!(s.count(1), 3);
        assert_eq!(s.count(2), 0);
    }

    #[test]
    fn eviction_adopts_min_plus_one() {
        let mut s = SpaceSaving::new(2);
        s.observe(1); // {1:1}
        s.observe(2); // {1:1, 2:1}
        s.observe(2); // {1:1, 2:2}
        s.observe(3); // evicts 1 -> {3:2, 2:2}
        assert_eq!(s.count(1), 0);
        assert_eq!(s.count(3), 2, "over-estimate preserved");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn count_never_underestimates_true_frequency() {
        // Space-Saving invariant: tracked count >= true count.
        let mut s = SpaceSaving::new(4);
        let stream: Vec<u32> = (0..1000).map(|i| i % 7).collect();
        let mut truth = [0u32; 7];
        for &r in &stream {
            s.observe(r);
            truth[r as usize] += 1;
            let est = s.count(r);
            if est > 0 {
                assert!(est >= truth[r as usize] / 2, "gross underestimate");
            }
        }
    }

    #[test]
    fn pop_max_returns_hottest() {
        let mut s = SpaceSaving::new(4);
        for _ in 0..5 {
            s.observe(10);
        }
        s.observe(20);
        let top = s.pop_max().unwrap();
        assert_eq!(top.row, 10);
        assert_eq!(top.count, 5);
        assert_eq!(s.max_count(), 1);
    }

    #[test]
    fn empty_behaviour() {
        let mut s = SpaceSaving::new(1);
        assert!(s.is_empty());
        assert_eq!(s.pop_max(), None);
        assert_eq!(s.max_count(), 0);
    }
}
