//! # mirza-trackers — baseline Rowhammer mitigations
//!
//! Every mitigation the paper compares MIRZA against, implemented behind the
//! same [`Mitigator`](mirza_dram::mitigation::Mitigator) trait:
//!
//! * [`prac`] — PRAC per-row counters with MOAT-style reactive ALERT,
//! * [`mint_rfm`] — MINT sampling with proactive RFM mitigation (Figure 3),
//! * [`mint_ref`] — MINT with mitigation under REF (Tables II and XII),
//! * [`mithril`] — large counter-based proactive tracker (Table II),
//! * [`trr`] — DDR4-era Targeted Row Refresh (Table XII; insecure),
//! * [`para`] — stateless probabilistic baseline (extension studies),
//!
//! plus the shared building blocks [`reservoir`] (uniform window sampling)
//! and [`summary`] (Space-Saving counter tables).

pub mod mint_ref;
pub mod mint_rfm;
pub mod mithril;
pub mod para;
pub mod prac;
pub mod reservoir;
pub mod summary;
pub mod trr;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::mint_ref::MintRef;
    pub use crate::mint_rfm::MintRfm;
    pub use crate::mithril::Mithril;
    pub use crate::para::Para;
    pub use crate::prac::PracMoat;
    pub use crate::reservoir::Reservoir;
    pub use crate::summary::{SpaceSaving, SummaryEntry};
    pub use crate::trr::Trr;
}
