//! PRAC + ABO with the MOAT policy (Sections II-G, VII).
//!
//! Per-Row Activation Counting keeps one counter in the DRAM array per row,
//! incremented on every ACT. MOAT raises ALERT when any counter crosses the
//! *Alert Threshold* (ATH); the back-off RFM mitigates the hottest tracked
//! row per bank and clears its counter. Row counters are cleared when the
//! refresh-pointer walk refreshes the row.
//!
//! The *performance* cost of PRAC (inflated tRP/tRAS/tRC) is modeled by
//! running the device with [`TimingParams::ddr5_6000_prac`]; this module
//! models only the tracking/mitigation side.
//!
//! [`TimingParams::ddr5_6000_prac`]: mirza_dram::timing::TimingParams::ddr5_6000_prac

use mirza_dram::address::{MappingScheme, RowMapping};
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::{MitigationLog, MitigationStats, Mitigator, RefreshSlice};
use mirza_dram::time::Ps;

/// PRAC per-row counters with MOAT-style reactive mitigation.
pub struct PracMoat {
    /// Alert threshold: a row reaching this count raises ALERT.
    ath: u32,
    mapping: RowMapping,
    rows_per_bank: u32,
    /// Per-bank, per-row activation counters.
    counters: Vec<Vec<u16>>,
    /// Rows at/above ATH awaiting mitigation, per bank.
    pending: Vec<Vec<u32>>,
    stats: MitigationStats,
    log: MitigationLog,
}

impl std::fmt::Debug for PracMoat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PracMoat")
            .field("ath", &self.ath)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl PracMoat {
    /// Creates PRAC+MOAT for one sub-channel with alert threshold `ath`.
    ///
    /// MOAT's security bound is `TRH > 2*ATH + ABO slack`; for the paper's
    /// thresholds (>= 500) a comfortable choice is `ath = trh / 4`.
    ///
    /// # Panics
    /// Panics if `ath` is zero or does not fit the 16-bit counter model.
    pub fn new(ath: u32, geom: &Geometry) -> Self {
        assert!(ath > 0, "ATH must be non-zero");
        assert!(ath <= u32::from(u16::MAX), "ATH exceeds counter width");
        let banks = geom.banks_per_subchannel() as usize;
        PracMoat {
            ath,
            // PRAC counters index physical rows directly; the mapping is
            // only needed to translate aggressors to victims.
            mapping: RowMapping::for_geometry(MappingScheme::Sequential, geom),
            rows_per_bank: geom.rows_per_bank,
            counters: vec![vec![0; geom.rows_per_bank as usize]; banks],
            pending: vec![Vec::new(); banks],
            stats: MitigationStats::default(),
            log: MitigationLog::new(),
        }
    }

    /// Creates the configuration used for a target double-sided threshold.
    pub fn for_trhd(trhd: u32, geom: &Geometry) -> Self {
        Self::new((trhd / 4).max(1), geom)
    }

    /// The alert threshold.
    pub fn ath(&self) -> u32 {
        self.ath
    }

    /// Current counter of `row` in `bank`.
    pub fn counter(&self, bank: usize, row: u32) -> u32 {
        u32::from(self.counters[bank][row as usize])
    }

    fn mitigate(&mut self, bank: usize, row: u32) {
        self.counters[bank][row as usize] = 0;
        self.stats.mitigations += 1;
        self.stats.victim_rows_refreshed += self.mapping.neighbors(row, 2).len() as u64;
        self.log.push(bank, row);
    }
}

impl Mitigator for PracMoat {
    fn name(&self) -> &'static str {
        "prac-moat"
    }

    fn on_activate(&mut self, bank: usize, row: u32, _now: Ps) {
        self.stats.acts_observed += 1;
        self.stats.acts_candidate += 1;
        let c = &mut self.counters[bank][row as usize];
        *c = c.saturating_add(1);
        if u32::from(*c) == self.ath {
            self.pending[bank].push(row);
        }
    }

    fn alert_pending(&self) -> bool {
        self.pending.iter().any(|p| !p.is_empty())
    }

    fn on_ref(&mut self, slice: &RefreshSlice, _now: Ps) {
        // Refreshed rows restart their disturbance budget.
        for bank in 0..self.counters.len() {
            for phys in slice.phys_rows.clone() {
                debug_assert!(phys < self.rows_per_bank);
                self.counters[bank][phys as usize] = 0;
            }
            self.pending[bank].retain(|&r| u32::from(self.counters[bank][r as usize]) >= self.ath);
        }
    }

    fn on_rfm(&mut self, alert: bool, _now: Ps) {
        if alert {
            self.stats.alerts_requested += 1;
        }
        for bank in 0..self.pending.len() {
            if let Some(row) = self.pending[bank].pop() {
                self.mitigate(bank, row);
            }
        }
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn mapping(&self) -> Option<&RowMapping> {
        Some(&self.mapping)
    }

    fn drain_mitigations(&mut self) -> Vec<(usize, u32)> {
        self.log.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry {
            subchannels: 1,
            ranks: 1,
            banks: 2,
            rows_per_bank: 4096,
            row_bytes: 4096,
            line_bytes: 64,
            subarrays_per_bank: 4,
            rows_per_ref: 16,
        }
    }

    #[test]
    fn no_alert_below_ath() {
        let mut p = PracMoat::new(100, &geom());
        for _ in 0..99 {
            p.on_activate(0, 7, Ps::ZERO);
        }
        assert!(!p.alert_pending());
        assert_eq!(p.counter(0, 7), 99);
    }

    #[test]
    fn alert_at_ath_and_mitigation_resets() {
        let mut p = PracMoat::new(100, &geom());
        for _ in 0..100 {
            p.on_activate(0, 7, Ps::ZERO);
        }
        assert!(p.alert_pending());
        p.on_rfm(true, Ps::ZERO);
        assert!(!p.alert_pending());
        assert_eq!(p.counter(0, 7), 0);
        let s = p.stats();
        assert_eq!(s.mitigations, 1);
        assert_eq!(s.alerts_requested, 1);
        assert_eq!(s.victim_rows_refreshed, 4);
    }

    #[test]
    fn refresh_clears_counters_and_pending() {
        let mut p = PracMoat::new(10, &geom());
        for _ in 0..10 {
            p.on_activate(0, 3, Ps::ZERO);
        }
        assert!(p.alert_pending());
        p.on_ref(
            &RefreshSlice {
                index: 0,
                phys_rows: 0..16,
            },
            Ps::ZERO,
        );
        assert_eq!(p.counter(0, 3), 0);
        assert!(!p.alert_pending(), "refresh disarms the pending row");
    }

    #[test]
    fn benign_spread_traffic_never_alerts() {
        // Typical workloads spread ACTs over many rows: with ATH=125
        // (TRHD=500 config), no row accumulates enough.
        let mut p = PracMoat::for_trhd(500, &geom());
        for i in 0..100_000u32 {
            p.on_activate((i % 2) as usize, i % 4096, Ps::ZERO);
        }
        assert!(!p.alert_pending());
        assert_eq!(p.stats().mitigations, 0);
    }

    #[test]
    fn per_bank_counters_are_independent() {
        let mut p = PracMoat::new(5, &geom());
        for _ in 0..4 {
            p.on_activate(0, 9, Ps::ZERO);
            p.on_activate(1, 9, Ps::ZERO);
        }
        assert_eq!(p.counter(0, 9), 4);
        assert_eq!(p.counter(1, 9), 4);
        assert!(!p.alert_pending());
    }
}
