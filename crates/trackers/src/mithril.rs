//! Mithril-style counter-based tracker (Kim et al., HPCA 2022): a large
//! Space-Saving counter table per bank, mitigating the hottest tracked row
//! at every `k`-th REF (Table II's high-storage baseline).

use mirza_dram::address::{MappingScheme, RowMapping};
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::{MitigationLog, MitigationStats, Mitigator, RefreshSlice};
use mirza_dram::time::Ps;

use crate::summary::SpaceSaving;

/// Counter-based proactive tracker with `entries` counters per bank.
#[derive(Debug)]
pub struct Mithril {
    entries_per_bank: usize,
    refs_per_mitigation: u64,
    mapping: RowMapping,
    tables: Vec<SpaceSaving>,
    refs_seen: u64,
    stats: MitigationStats,
    log: MitigationLog,
}

impl Mithril {
    /// Creates the tracker with `entries_per_bank` counters, mitigating at
    /// every `refs_per_mitigation`-th REF.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(entries_per_bank: usize, refs_per_mitigation: u64, geom: &Geometry) -> Self {
        assert!(refs_per_mitigation > 0, "mitigation rate must be non-zero");
        let banks = geom.banks_per_subchannel() as usize;
        Mithril {
            entries_per_bank,
            refs_per_mitigation,
            mapping: RowMapping::for_geometry(MappingScheme::Sequential, geom),
            tables: (0..banks)
                .map(|_| SpaceSaving::new(entries_per_bank))
                .collect(),
            refs_seen: 0,
            stats: MitigationStats::default(),
            log: MitigationLog::new(),
        }
    }

    /// SRAM bytes per bank: 28 bits per entry (row-id + counter), as in the
    /// paper's Section VIII-A sizing (2K entries -> 7 KB).
    pub fn sram_bytes_per_bank(&self) -> u32 {
        (self.entries_per_bank as u32 * 28).div_ceil(8)
    }

    /// Read access to a bank's counter table.
    pub fn table(&self, bank: usize) -> &SpaceSaving {
        &self.tables[bank]
    }
}

impl Mitigator for Mithril {
    fn name(&self) -> &'static str {
        "mithril"
    }

    fn on_activate(&mut self, bank: usize, row: u32, _now: Ps) {
        self.stats.acts_observed += 1;
        self.stats.acts_candidate += 1;
        self.tables[bank].observe(row);
    }

    fn on_ref(&mut self, _slice: &RefreshSlice, _now: Ps) {
        self.refs_seen += 1;
        if !self.refs_seen.is_multiple_of(self.refs_per_mitigation) {
            return;
        }
        for bank in 0..self.tables.len() {
            if let Some(top) = self.tables[bank].pop_max() {
                self.stats.mitigations += 1;
                self.stats.ref_mitigations += 1;
                self.stats.victim_rows_refreshed += self.mapping.neighbors(top.row, 2).len() as u64;
                self.log.push(bank, top.row);
            }
        }
    }

    fn on_rfm(&mut self, _alert: bool, _now: Ps) {}

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn mapping(&self) -> Option<&RowMapping> {
        Some(&self.mapping)
    }

    fn drain_mitigations(&mut self) -> Vec<(usize, u32)> {
        self.log.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry {
            subchannels: 1,
            ranks: 1,
            banks: 1,
            rows_per_bank: 4096,
            row_bytes: 4096,
            line_bytes: 64,
            subarrays_per_bank: 4,
            rows_per_ref: 16,
        }
    }

    #[test]
    fn mitigates_hottest_row() {
        let mut m = Mithril::new(8, 1, &geom());
        for _ in 0..50 {
            m.on_activate(0, 100, Ps::ZERO);
        }
        m.on_activate(0, 200, Ps::ZERO);
        m.on_ref(
            &RefreshSlice {
                index: 0,
                phys_rows: 0..16,
            },
            Ps::ZERO,
        );
        assert_eq!(m.stats().mitigations, 1);
        // The hot row was removed from the table.
        assert_eq!(m.table(0).count(100), 0);
        assert_eq!(m.table(0).count(200), 1);
    }

    #[test]
    fn sram_sizing_matches_paper() {
        // 2K entries * 28 bits = 7 KB per bank (Section VIII-A).
        let m = Mithril::new(2048, 1, &geom());
        assert_eq!(m.sram_bytes_per_bank(), 7168);
    }

    #[test]
    fn never_alerts() {
        let mut m = Mithril::new(4, 1, &geom());
        for i in 0..1000u32 {
            m.on_activate(0, i % 3, Ps::ZERO);
        }
        assert!(!m.alert_pending());
    }
}
