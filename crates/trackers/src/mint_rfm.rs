//! MINT with proactive RFM mitigation (the paper's main proactive baseline,
//! Figure 3). The MC issues an RFM every *Bank Activation Threshold* ACTs;
//! at each RFM every bank mitigates one uniformly sampled aggressor from
//! the window just ended.

use mirza_dram::address::{MappingScheme, RowMapping};
use mirza_dram::geometry::Geometry;
use mirza_dram::mitigation::{MitigationLog, MitigationStats, Mitigator, RefreshSlice};
use mirza_dram::time::Ps;

use crate::reservoir::Reservoir;

/// MINT sampling + proactive RFM consumption, per sub-channel.
#[derive(Debug)]
pub struct MintRfm {
    mapping: RowMapping,
    reservoirs: Vec<Reservoir>,
    stats: MitigationStats,
    log: MitigationLog,
}

impl MintRfm {
    /// Creates the tracker. The mitigation *rate* is set on the MC side
    /// (RFM every BAT activations); this side only samples and mitigates.
    pub fn new(geom: &Geometry, seed: u64) -> Self {
        let banks = geom.banks_per_subchannel() as usize;
        MintRfm {
            mapping: RowMapping::for_geometry(MappingScheme::Sequential, geom),
            reservoirs: (0..banks)
                .map(|b| Reservoir::new(seed.wrapping_add(b as u64)))
                .collect(),
            stats: MitigationStats::default(),
            log: MitigationLog::new(),
        }
    }

    /// The window the paper's MINT configuration uses for a target TRHD
    /// (Section II-F: RFM every 24/48/96 ACTs for TRHD 500/1K/2K).
    pub fn bat_for_trhd(trhd: u32) -> u32 {
        match trhd {
            0..=500 => 24,
            501..=1000 => 48,
            _ => 96,
        }
    }
}

impl Mitigator for MintRfm {
    fn name(&self) -> &'static str {
        "mint-rfm"
    }

    fn on_activate(&mut self, bank: usize, row: u32, _now: Ps) {
        self.stats.acts_observed += 1;
        self.stats.acts_candidate += 1;
        self.reservoirs[bank].observe(row);
    }

    fn on_ref(&mut self, _slice: &RefreshSlice, _now: Ps) {}

    fn on_rfm(&mut self, _alert: bool, _now: Ps) {
        for bank in 0..self.reservoirs.len() {
            if let Some(row) = self.reservoirs[bank].take() {
                self.stats.mitigations += 1;
                self.stats.victim_rows_refreshed += self.mapping.neighbors(row, 2).len() as u64;
                self.log.push(bank, row);
            }
        }
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn mapping(&self) -> Option<&RowMapping> {
        Some(&self.mapping)
    }

    fn drain_mitigations(&mut self) -> Vec<(usize, u32)> {
        self.log.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry {
            subchannels: 1,
            ranks: 1,
            banks: 2,
            rows_per_bank: 4096,
            row_bytes: 4096,
            line_bytes: 64,
            subarrays_per_bank: 4,
            rows_per_ref: 16,
        }
    }

    #[test]
    fn mitigates_one_per_bank_per_rfm() {
        let mut m = MintRfm::new(&geom(), 1);
        for i in 0..48u32 {
            m.on_activate(0, i, Ps::ZERO);
            m.on_activate(1, i + 100, Ps::ZERO);
        }
        m.on_rfm(false, Ps::ZERO);
        let s = m.stats();
        assert_eq!(s.mitigations, 2);
        assert_eq!(s.victim_rows_refreshed, 8);
        // Window restarts: an immediate second RFM has nothing sampled.
        m.on_rfm(false, Ps::ZERO);
        assert_eq!(m.stats().mitigations, 2);
    }

    #[test]
    fn idle_banks_skip_mitigation() {
        let mut m = MintRfm::new(&geom(), 2);
        m.on_activate(0, 5, Ps::ZERO);
        m.on_rfm(false, Ps::ZERO);
        assert_eq!(m.stats().mitigations, 1, "only the active bank mitigates");
    }

    #[test]
    fn never_alerts() {
        let mut m = MintRfm::new(&geom(), 3);
        for i in 0..10_000u32 {
            m.on_activate(0, i % 8, Ps::ZERO);
        }
        assert!(!m.alert_pending());
    }

    #[test]
    fn paper_bat_values() {
        assert_eq!(MintRfm::bat_for_trhd(500), 24);
        assert_eq!(MintRfm::bat_for_trhd(1000), 48);
        assert_eq!(MintRfm::bat_for_trhd(2000), 96);
    }
}
