//! MIRZA reproduction facade crate: re-exports every subsystem.
pub use mirza_attacks as attacks;
pub use mirza_core as core;
pub use mirza_dram as dram;
pub use mirza_frontend as frontend;
pub use mirza_memctrl as memctrl;
pub use mirza_security as security;
pub use mirza_sim as sim;
pub use mirza_trackers as trackers;
pub use mirza_workloads as workloads;
